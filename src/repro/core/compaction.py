"""Graph compaction: matching contraction and bisection projection.

The paper's compaction steps 2 and 4 (Section V):

    2. Form a new graph G' by contracting the edges in the random matching
       M.  That is coalesce the two endpoints of an edge in the random
       matching M to form a new vertex.  All vertices incident to the two
       original vertices are now incident to the new vertex just formed.
    ...
    4. Uncompact the edges to obtain the original graph and create an
       initial bisection (A, B) from (A', B').

Bookkeeping that the contraction must get right for the projected cut to
equal the coarse cut:

* parallel edges created by coalescing merge into a single edge whose
  weight is the *sum* (so the weighted cut of G' equals the cut of G for
  any partition that keeps matched pairs together);
* the edge inside a contracted pair disappears (it can never be cut while
  the pair moves as a unit);
* a supervertex carries vertex weight = sum of its members' weights, so
  weighted balance on G' is exactly vertex balance on G.

:class:`Compaction` retains the supervertex membership table so a coarse
bisection can be projected back with :meth:`Compaction.project`.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from ..graphs.graph import Graph
from ..obs import counter, gauge, span
from ..partition.bisection import Bisection
from .matching import Matching, is_matching

__all__ = ["Compaction", "compact"]

Vertex = Hashable


@dataclass(frozen=True)
class Compaction:
    """A contracted graph plus the mapping back to the original.

    ``coarse`` is G'; ``members[s]`` lists the original vertices coalesced
    into supervertex ``s`` (one or two of them); ``parent[v]`` is the
    supervertex containing original vertex ``v``.
    """

    original: Graph
    coarse: Graph
    members: dict[Vertex, tuple[Vertex, ...]]
    parent: dict[Vertex, Vertex]

    @property
    def compaction_ratio(self) -> float:
        """``|V'| / |V|`` — 0.5 for a perfect matching, 1.0 for an empty one.

        The empty graph compacts to itself, so its ratio is defined as 1.0
        (rather than 0/0).
        """
        if self.original.num_vertices == 0:
            return 1.0
        return self.coarse.num_vertices / self.original.num_vertices

    def validate(self) -> None:
        """Check the uncompaction bookkeeping; raises ``AssertionError`` on drift.

        Verifies that the supervertex membership table is a partition of
        the original vertex set (no vertex lost or duplicated through an
        uncompaction round-trip), that ``parent`` is its inverse, and that
        vertex and edge weight totals are conserved by the contraction.
        """
        seen: set[Vertex] = set()
        for super_v, group in self.members.items():
            if super_v not in self.coarse:
                raise AssertionError(f"supervertex {super_v!r} not in coarse graph")
            if not group:
                raise AssertionError(f"supervertex {super_v!r} has no members")
            for v in group:
                if v in seen:
                    raise AssertionError(f"vertex {v!r} duplicated across supervertices")
                seen.add(v)
                if v not in self.original:
                    raise AssertionError(f"member {v!r} not in original graph")
                if self.parent.get(v) != super_v:
                    raise AssertionError(
                        f"parent[{v!r}] = {self.parent.get(v)!r} != {super_v!r}"
                    )
            member_weight = sum(self.original.vertex_weight(v) for v in group)
            if self.coarse.vertex_weight(super_v) != member_weight:
                raise AssertionError(
                    f"supervertex {super_v!r} weight {self.coarse.vertex_weight(super_v)}"
                    f" != member total {member_weight}"
                )
        missing = set(self.original.vertices()) - seen
        if missing:
            raise AssertionError(f"{len(missing)} vertices lost through compaction")
        internal = sum(
            w for u, v, w in self.original.edges() if self.parent[u] == self.parent[v]
        )
        if self.coarse.total_edge_weight != self.original.total_edge_weight - internal:
            raise AssertionError(
                f"coarse edge weight {self.coarse.total_edge_weight} != original "
                f"{self.original.total_edge_weight} minus contracted {internal}"
            )

    def project(self, coarse_bisection: Bisection) -> Bisection:
        """Uncompact: map a bisection of G' to the induced bisection of G.

        The induced cut equals the coarse weighted cut, and the vertex
        balance of the result equals the weighted balance of the coarse
        bisection (both facts are property-tested).
        """
        if coarse_bisection.graph is not self.coarse and coarse_bisection.graph != self.coarse:
            raise ValueError("bisection does not belong to this compaction's coarse graph")
        # One dict-comprehension pass over the parent map (C-level loop)
        # instead of nested Python loops over the member groups.
        coarse_sides = coarse_bisection.assignment()
        coarse_get = coarse_sides.__getitem__
        assignment = {v: coarse_get(p) for v, p in self.parent.items()}
        return Bisection(self.original, assignment)


def compact(graph: Graph, matching: Matching) -> Compaction:
    """Contract the edges of ``matching`` in ``graph`` (paper step 2).

    Supervertex labels are fresh integers ``0 .. |V'|-1`` (matched pairs
    first, in matching order, then unmatched vertices in graph order), so
    the coarse graph is independent of the original's label type.

    Raises ``ValueError`` if ``matching`` is not a valid matching of
    ``graph``.
    """
    if not is_matching(graph, matching):
        raise ValueError("not a valid matching of this graph")

    with span("compaction.compact", vertices=graph.num_vertices):
        compaction = _compact(graph, matching)
    counter("compaction_contractions_total").inc()
    counter("compaction_matched_pairs_total").inc(len(matching))
    gauge("compaction_ratio").set(compaction.compaction_ratio)
    return compaction


def _compact(graph: Graph, matching: Matching) -> Compaction:
    parent: dict[Vertex, Vertex] = {}
    members: dict[Vertex, tuple[Vertex, ...]] = {}
    next_label = 0
    for u, v in matching:
        parent[u] = parent[v] = next_label
        members[next_label] = (u, v)
        next_label += 1
    for v in graph.vertices():
        if v not in parent:
            parent[v] = next_label
            members[next_label] = (v,)
            next_label += 1

    coarse = Graph()
    for super_v, group in members.items():
        coarse.add_vertex(super_v, sum(graph.vertex_weight(v) for v in group))
    for u, v, w in graph.edges():
        pu, pv = parent[u], parent[v]
        if pu == pv:
            continue  # the contracted matching edge (or a parallel mate) vanishes
        coarse.add_edge(pu, pv, w, merge=True)

    return Compaction(original=graph, coarse=coarse, members=members, parent=parent)
