"""Tiny ASCII visualization helpers for examples and CLI output.

Pure-text sparklines, horizontal bars, and histograms — enough to show a
cooling curve or a cut distribution in a terminal without any plotting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["sparkline", "horizontal_bars", "histogram"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (empty string for no data).

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(top, int((v - lo) / span * top + 0.5))] for v in values
    )


def horizontal_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Labelled horizontal bar chart, scaled to the max value.

    >>> print(horizontal_bars(["a", "bb"], [2, 4], width=4))
     a ##   2
    bb #### 4
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    if any(v < 0 for v in values):
        raise ValueError("values must be nonnegative")
    peak = max(values) or 1
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = fill * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.rjust(label_width)} {bar.ljust(width)} {value:g}")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40) -> str:
    """Text histogram of ``values`` with ``bins`` equal-width buckets."""
    if not values:
        return ""
    if bins < 1:
        raise ValueError("bins must be positive")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return horizontal_bars([f"{lo:g}"], [len(values)], width)
    span = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        index = min(bins - 1, int((v - lo) / span))
        counts[index] += 1
    labels = [f"[{lo + i * span:.3g}, {lo + (i + 1) * span:.3g})" for i in range(bins)]
    return horizontal_bars(labels, counts, width)
