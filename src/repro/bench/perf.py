"""Kernel-backend performance snapshots (the ``repro-bisect perf`` command).

The kernel layer (:mod:`repro.kernels`) promises two things: *bitwise
identical* results across every backend, and a wall-clock win worth its
complexity.  This module measures the second promise and spot-checks the
first.  Each paper workload (``Gbreg``/``Gnp`` at 2n = 500/2000/5000) is
run through KL, FM, SA, CKL, and CSA once per backend from the same seed
— ``dict`` (the reference kernels), ``array`` (the stdlib CSR kernels),
and ``numpy`` when available — and the per-algorithm wall time, cut, and
moves/second land in a ``BENCH_<n>.json`` snapshot.  The cuts and move
counts from all backends must agree exactly; a mismatch marks the whole
snapshot failed, because it means a fast path changed behaviour.

At the large sizes the snapshot also carries a *streaming* case: a big
``Gbreg`` run as an SA replica ensemble through the execution engine,
once serially and once over a worker pool with shared-memory CSR
sharding, recording the shm export/attach telemetry alongside the usual
cut agreement (see :mod:`repro.graphs.shm`).

Snapshots from different machines are not comparable in absolute seconds,
so :func:`diff_snapshots` compares the *speedup ratios* (CSR time over
dict time measured on the same machine in the same process), which are
machine-independent to first order.  A regression is a cell whose new
speedup fell more than ``threshold`` below the old one::

    new_speedup < old_speedup * (1 - threshold)

SA and CSA run with ``record_trace=False``: the harness times the walk,
not the diagnostic bookkeeping.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass

from ..core.pipeline import CompactedResult, ckl, csa
from ..graphs.csr import csr_view
from ..graphs.generators import gbreg, gnp_with_degree
from ..graphs.graph import Graph
from ..kernels import numpy_available
from ..obs import obs_enabled
from ..partition.annealing import AnnealingSchedule, simulated_annealing
from ..partition.fm import fiduccia_mattheyses
from ..partition.kl import kernighan_lin
from ..rng import resolve_rng
from .tables import render_generic_table

__all__ = [
    "PERF_ALGORITHMS",
    "PERF_SIZES",
    "SMALL_SIZES",
    "STREAMING_SIZE_FLOOR",
    "PerfCase",
    "SNAPSHOT_SCHEMA",
    "diff_snapshots",
    "load_snapshot",
    "measure_size",
    "measure_streaming",
    "perf_cases",
    "render_diff",
    "render_snapshot",
    "snapshot_path",
    "write_snapshot",
]

#: Schema 2 added the per-backend columns (``array``/``numpy`` beside
#: ``dict``) and the optional ``streaming`` shared-memory case; schema 1
#: snapshots (committed baselines) still load and diff.
SNAPSHOT_SCHEMA = 2
_SUPPORTED_SCHEMAS = (1, 2)

PERF_ALGORITHMS = ("kl", "fm", "sa", "ckl", "csa")

#: Sizes at and above this get the streaming shared-memory case by default.
STREAMING_SIZE_FLOOR = 5000

# The paper's random-graph sizes (2n): Section VI uses 500-vertex graphs
# for the dense sweeps and 2000/5000 for the headline tables.
PERF_SIZES = (500, 2000, 5000)
SMALL_SIZES = (500, 2000)

_GBREG_DEGREE = 3
_GNP_DEGREE = 2.5


@dataclass(frozen=True)
class PerfCase:
    """One timed workload: a label and a seeded graph builder."""

    label: str
    build: Callable[[object], Graph]


def _gbreg_width(two_n: int) -> int:
    """The planted width used at this size (16, parity-fixed for d=3)."""
    b = 16
    return b if ((two_n // 2) * _GBREG_DEGREE - b) % 2 == 0 else b + 1


def perf_cases(two_n: int) -> list[PerfCase]:
    """The two paper families timed at size ``two_n``."""
    b = _gbreg_width(two_n)
    return [
        PerfCase(
            label=f"Gbreg({two_n},{b},{_GBREG_DEGREE})",
            build=lambda rng, two_n=two_n, b=b: gbreg(two_n, b, _GBREG_DEGREE, rng).graph,
        ),
        PerfCase(
            label=f"Gnp({two_n},deg{_GNP_DEGREE})",
            build=lambda rng, two_n=two_n: gnp_with_degree(two_n, _GNP_DEGREE, rng),
        ),
    ]


@contextmanager
def _forced_backend(backend: str):
    """Pin ``REPRO_KERNEL`` to one backend (restores prior env on exit).

    ``REPRO_NO_CSR`` is cleared for the duration so the harness measures
    the backend it says it measures even under an ambient escape hatch.
    """
    prior = {name: os.environ.get(name) for name in ("REPRO_KERNEL", "REPRO_NO_CSR")}
    os.environ["REPRO_KERNEL"] = backend
    os.environ.pop("REPRO_NO_CSR", None)
    try:
        yield
    finally:
        for name, value in prior.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _snapshot_backends() -> tuple[str, ...]:
    """The backends this host can measure (``numpy`` only if importable)."""
    backends = ["dict", "array"]
    if numpy_available():
        backends.append("numpy")
    return tuple(backends)


def _move_count(result) -> int:
    """A per-algorithm progress counter, for moves/second.

    KL counts swaps, FM counts moves, SA counts attempted moves; the
    compacted pipelines sum their coarse and fine stages.
    """
    if isinstance(result, CompactedResult):
        return _move_count(result.coarse_result) + _move_count(result.final_result)
    for attr in ("swaps", "moves", "moves_attempted"):
        value = getattr(result, attr, None)
        if value is not None:
            return value
    return 0


def _run_algorithm(name: str, graph: Graph, seed: int, sa_size_factor: int):
    """One seeded run; returns ``(seconds, cut, moves)``."""
    rng = resolve_rng(seed)
    schedule = AnnealingSchedule(size_factor=sa_size_factor)
    start = time.perf_counter()
    if name == "kl":
        result = kernighan_lin(graph, rng=rng)
    elif name == "fm":
        result = fiduccia_mattheyses(graph, rng=rng)
    elif name == "sa":
        result = simulated_annealing(
            graph, rng=rng, schedule=schedule, record_trace=False
        )
    elif name == "ckl":
        result = ckl(graph, rng=rng)
    elif name == "csa":
        result = csa(graph, rng=rng, schedule=schedule, record_trace=False)
    else:
        raise ValueError(f"unknown perf algorithm {name!r}")
    seconds = time.perf_counter() - start
    return seconds, result.bisection.cut, _move_count(result)


def _best_run(name, graph, seed, sa_size_factor, repeats):
    """Repeat a run, keeping the minimum wall time (cut/moves are seeded,
    so they are identical across repeats)."""
    best_seconds, cut, moves = _run_algorithm(name, graph, seed, sa_size_factor)
    for _ in range(repeats - 1):
        seconds, _, _ = _run_algorithm(name, graph, seed, sa_size_factor)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, cut, moves


def measure_size(
    two_n: int,
    seed: int = 0,
    sa_size_factor: int = 4,
    algorithms: Iterable[str] = PERF_ALGORITHMS,
    repeats: int = 1,
    streaming: bool | None = None,
) -> dict:
    """Measure every case x algorithm x backend cell at one size.

    The CSR view is compiled once per case *outside* the timed region
    (recorded as ``csr_compile_seconds``): in real use one compile is
    amortized over a whole run/table sweep, and charging it to whichever
    algorithm happened to go first would distort per-algorithm ratios.

    ``streaming=None`` includes the shared-memory streaming case exactly
    when ``two_n >= STREAMING_SIZE_FLOOR``.
    """
    backends = _snapshot_backends()
    cases = []
    ok = True
    for case in perf_cases(two_n):
        graph = case.build(resolve_rng(seed))
        start = time.perf_counter()
        csr_view(graph)
        compile_seconds = time.perf_counter() - start
        cells: dict[str, dict] = {}
        for name in algorithms:
            runs: dict[str, tuple[float, int, int]] = {}
            for backend in backends:
                with _forced_backend(backend):
                    runs[backend] = _best_run(
                        name, graph, seed, sa_size_factor, repeats
                    )
            dict_seconds, cut, moves = runs["dict"]
            cuts_match = all(
                (c, m) == (cut, moves) for _s, c, m in runs.values()
            )
            ok = ok and cuts_match
            cell: dict = {
                "cut": cut,
                "moves": moves,
                "cuts_match": cuts_match,
                "backends": list(backends),
            }
            for backend, (seconds, _c, _m) in runs.items():
                cell[f"{backend}_seconds"] = seconds
                cell[f"{backend}_moves_per_sec"] = (
                    moves / seconds if seconds > 0 else 0.0
                )
            array_seconds = runs["array"][0]
            # "speedup" stays dict-over-default-CSR-backend so schema-1
            # baselines keep diffing against schema-2 snapshots.
            cell["speedup"] = (
                dict_seconds / array_seconds if array_seconds > 0 else 0.0
            )
            if "numpy" in runs:
                numpy_seconds = runs["numpy"][0]
                cell["speedup_numpy"] = (
                    dict_seconds / numpy_seconds if numpy_seconds > 0 else 0.0
                )
            cells[name] = cell
        cases.append(
            {
                "label": case.label,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "csr_compile_seconds": compile_seconds,
                "algorithms": cells,
            }
        )
    snapshot = {
        "schema": SNAPSHOT_SCHEMA,
        "size": two_n,
        "seed": seed,
        "sa_size_factor": sa_size_factor,
        "repeats": repeats,
        "backends": list(backends),
        # Whether REPRO_OBS instrumentation was live during the measurement.
        # Instrumented and uninstrumented timings are not commensurable, so
        # diff_snapshots refuses to mix them.
        "obs": obs_enabled(),
        "ok": ok,
        "cases": cases,
    }
    if streaming is None:
        streaming = two_n >= STREAMING_SIZE_FLOOR
    if streaming:
        stream = measure_streaming(two_n, seed=seed)
        snapshot["streaming"] = stream
        snapshot["ok"] = ok and stream["cuts_match"]
    return snapshot


def measure_streaming(
    two_n: int,
    seed: int = 0,
    replicas: int = 4,
    jobs: int = 2,
    sa_size_factor: int = 1,
) -> dict:
    """The streaming case: a large Gbreg SA ensemble over shm sharding.

    Runs the same replica set twice — serial in-process, then through a
    worker pool where the compiled CSR is exported to shared memory and
    attached zero-copy — and checks the cuts agree bit for bit.  The
    worker-side ``worker_csr_compiles`` counters prove the compile-once
    contract (they must sum to zero).

    When instrumented (``REPRO_OBS``), the snapshot also records
    ``worker_slots`` — how many distinct worker processes shipped
    ``engine_worker_jobs_total{worker=...}`` increments during the shared
    run — proving the fleet attribution pipeline ran through the harness.
    """
    from ..engine.executor import Engine
    from ..engine.replicas import sa_replicas
    from ..engine.telemetry import Telemetry

    b = _gbreg_width(two_n)
    graph = gbreg(two_n, b, _GBREG_DEGREE, resolve_rng(seed)).graph
    start = time.perf_counter()
    serial = sa_replicas(
        graph, replicas, seed=seed, size_factor=sa_size_factor, jobs=1
    )
    serial_seconds = time.perf_counter() - start

    telemetry = Telemetry()
    engine = Engine(jobs=jobs, telemetry=telemetry)
    counters_before: dict[str, float] = {}
    if obs_enabled():
        from ..obs import REGISTRY

        counters_before = dict(REGISTRY.snapshot()["counters"])
    start = time.perf_counter()
    shared = sa_replicas(
        graph, replicas, seed=seed, size_factor=sa_size_factor, engine=engine
    )
    shared_seconds = time.perf_counter() - start
    worker_slots = 0
    if obs_enabled():
        from ..obs import REGISTRY
        from ..obs.shipper import parse_series

        slots: set[str] = set()
        for series, value in REGISTRY.snapshot()["counters"].items():
            name, labels = parse_series(series)
            if name != "engine_worker_jobs_total" or "worker" not in labels:
                continue
            if value > counters_before.get(series, 0):
                slots.add(labels["worker"])
        worker_slots = len(slots)
    return {
        "label": f"Gbreg({two_n},{b},{_GBREG_DEGREE}) SA x{replicas}",
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "replicas": replicas,
        "jobs": jobs,
        "sa_size_factor": sa_size_factor,
        "serial_seconds": serial_seconds,
        "shared_seconds": shared_seconds,
        "shm_exports": telemetry.count("shm_export"),
        "shm_unlinks": telemetry.count("shm_unlink"),
        "worker_csr_compiles": sum(
            r.counters.get("worker_csr_compiles", 0) for r in shared.results
        ),
        "worker_slots": worker_slots,
        "cuts": list(serial.cuts),
        "cuts_match": serial.cuts == shared.cuts,
    }


def snapshot_path(directory: str, two_n: int) -> str:
    return os.path.join(directory, f"BENCH_{two_n}.json")


def write_snapshot(snapshot: dict, directory: str) -> str:
    """Write ``BENCH_<n>.json`` under ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, snapshot["size"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    schema = snapshot.get("schema")
    if schema not in _SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported perf snapshot schema {schema!r} "
            f"(expected one of {_SUPPORTED_SCHEMAS})"
        )
    return snapshot


def diff_snapshots(old: dict, new: dict, threshold: float = 0.25) -> dict:
    """Compare two snapshots by speedup ratio; flag regressions.

    Ratios, not absolute seconds: both runs of a cell happen back to back
    on one machine, so ``dict_seconds / csr_seconds`` cancels the machine
    out and an old snapshot from CI remains a valid baseline for a rerun
    on different hardware.  Cells present in only one snapshot are listed
    under ``missing`` and do not fail the diff (workloads evolve).

    Raises ``ValueError`` when one snapshot was measured with ``REPRO_OBS``
    instrumentation on and the other with it off — their timings answer
    different questions.  Snapshots predating the ``obs`` key (legacy
    baselines) compare against anything.
    """
    old_obs = old.get("obs")
    new_obs = new.get("obs")
    if old_obs is not None and new_obs is not None and old_obs != new_obs:
        raise ValueError(
            "refusing to diff perf snapshots: one was measured with REPRO_OBS "
            "instrumentation enabled and the other with it disabled"
        )
    old_cells = {
        (case["label"], name): cell
        for case in old["cases"]
        for name, cell in case["algorithms"].items()
    }
    new_cells = {
        (case["label"], name): cell
        for case in new["cases"]
        for name, cell in case["algorithms"].items()
    }
    regressions = []
    compared = []
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old_speedup = old_cells[key]["speedup"]
        new_speedup = new_cells[key]["speedup"]
        entry = {
            "label": key[0],
            "algorithm": key[1],
            "old_speedup": old_speedup,
            "new_speedup": new_speedup,
        }
        compared.append(entry)
        if new_speedup < old_speedup * (1.0 - threshold):
            regressions.append(entry)
    missing = [
        {"label": label, "algorithm": name}
        for label, name in sorted(old_cells.keys() ^ new_cells.keys())
    ]
    return {
        "threshold": threshold,
        "compared": compared,
        "regressions": regressions,
        "missing": missing,
        "ok": not regressions,
    }


def render_snapshot(snapshot: dict) -> str:
    """Human-readable table for one snapshot (schema 1 or 2)."""

    def fmt(seconds: float | None) -> str:
        return "-" if seconds is None else f"{seconds:.3f}"

    rows = []
    for case in snapshot["cases"]:
        for name, cell in case["algorithms"].items():
            array_seconds = cell.get("array_seconds", cell.get("csr_seconds"))
            rows.append(
                [
                    case["label"],
                    name,
                    fmt(cell["dict_seconds"]),
                    fmt(array_seconds),
                    fmt(cell.get("numpy_seconds")),
                    f"{cell['speedup']:.2f}x",
                    cell["cut"],
                    "yes" if cell["cuts_match"] else "NO",
                ]
            )
    title = (
        f"perf 2n={snapshot['size']} seed={snapshot['seed']} "
        f"sa_size_factor={snapshot['sa_size_factor']}"
    )
    lines = [
        render_generic_table(
            ["graph", "algo", "dict(s)", "array(s)", "numpy(s)", "speedup",
             "cut", "match"],
            rows,
            title=title,
        )
    ]
    stream = snapshot.get("streaming")
    if stream is not None:
        lines.append(
            f"streaming {stream['label']}: serial {stream['serial_seconds']:.3f}s, "
            f"shm x{stream['jobs']} workers {stream['shared_seconds']:.3f}s, "
            f"{stream['shm_exports']} export(s), "
            f"{stream['worker_csr_compiles']} worker compile(s), "
            f"cuts {'match' if stream['cuts_match'] else 'DIVERGE'}"
        )
    return "\n".join(lines)


def render_diff(report: dict) -> str:
    """Human-readable table for a :func:`diff_snapshots` report."""
    rows = [
        [
            entry["label"],
            entry["algorithm"],
            f"{entry['old_speedup']:.2f}x",
            f"{entry['new_speedup']:.2f}x",
            "REGRESSED" if entry in report["regressions"] else "ok",
        ]
        for entry in report["compared"]
    ]
    for entry in report["missing"]:
        rows.append([entry["label"], entry["algorithm"], "-", "-", "missing"])
    lines = [
        render_generic_table(
            ["graph", "algo", "old speedup", "new speedup", "status"],
            rows,
            title=f"perf diff (threshold {report['threshold']:.0%})",
        )
    ]
    if report["regressions"]:
        lines.append(
            f"{len(report['regressions'])} cell(s) regressed beyond "
            f"{report['threshold']:.0%}"
        )
    else:
        lines.append("no regressions")
    return "\n".join(lines)
