"""One-shot experiment report: every paper table in a single markdown file.

``generate_report`` runs the full workload sweep at the current scale and
renders all tables (plus the Observation summaries) into one markdown
document — the programmatic way to regenerate the data behind
EXPERIMENTS.md.  Exposed on the CLI as ``repro-bisect report``.

All sweeps execute through the :mod:`repro.engine` job engine; pass an
``engine`` configured with ``jobs=N`` to fan cells out across worker
processes and/or a result cache to make regeneration near-free.  The
report ends with a telemetry summary of the engine run.
"""

from __future__ import annotations

import random
from statistics import mean

from ..engine.executor import Engine
from ..engine.telemetry import Timer
from ..rng import resolve_rng, spawn
from .metrics import cut_improvement_percent, cut_ratio
from .runner import run_workload
from .tables import aggregate_rows, render_paper_table
from .workloads import (
    Scale,
    btree_cases,
    g2set_cases,
    gbreg_cases,
    gnp_cases,
    grid_cases,
    ladder_cases,
    netlist_algorithm_specs,
    netlist_cases,
    standard_algorithm_specs,
)

__all__ = ["generate_report"]


def _fence(text: str) -> str:
    return "```\n" + text + "\n```"


def generate_report(
    scale: Scale,
    rng: random.Random | int | None = None,
    include_sa: bool = True,
    engine: Engine | None = None,
) -> str:
    """Run every table's workload and render one markdown report."""
    rng = resolve_rng(rng)
    engine = engine if engine is not None else Engine()
    algorithms = standard_algorithm_specs(scale, include_sa=include_sa)
    pairs = (("sa", "csa"), ("kl", "ckl")) if include_sa else (("kl", "ckl"),)

    sections: list[str] = [
        "# repro experiment report",
        "",
        f"Scale: **{scale.name}** | graph sizes: {scale.random_graph_sizes} | "
        f"starts: {scale.starts} | SA temperature length: {scale.sa_size_factor}n | "
        f"algorithms: {', '.join(sorted(algorithms))} | "
        f"engine: jobs={engine.jobs}, cache={'on' if engine.cache else 'off'}",
        "",
    ]

    timer = Timer()
    with timer:
        tables = {
            "Gbreg(2n, b, 3) — the headline table": gbreg_cases(scale, 3),
            "Gbreg(2n, b, 4)": gbreg_cases(scale, 4),
            "G2set average degree 2.5": g2set_cases(scale, 2.5),
            "G2set average degree 3.0": g2set_cases(scale, 3.0),
            "G2set average degree 3.5": g2set_cases(scale, 3.5),
            "G2set average degree 4.0": g2set_cases(scale, 4.0),
            "Gnp degree sweep": gnp_cases(scale),
            "Ladder graphs": ladder_cases(scale),
            "Grid graphs": grid_cases(scale),
            "Binary trees": btree_cases(scale),
        }

        degree3_rows = None
        for salt, (title, cases) in enumerate(tables.items()):
            rows = run_workload(
                cases, algorithms, rng=spawn(rng, salt), starts=scale.starts,
                engine=engine,
            )
            sections.append(f"## {title}")
            sections.append("")
            sections.append(_fence(render_paper_table(title, rows, base_pairs=pairs)))
            sections.append("")
            if title.startswith("Gbreg(2n, b, 3)"):
                degree3_rows = aggregate_rows(rows)

        # Extension workload: native netlist bisection.
        netlist_rows = run_workload(
            netlist_cases(scale),
            netlist_algorithm_specs(scale, include_sa=include_sa),
            rng=spawn(rng, 99),
            starts=scale.starts,
            engine=engine,
        )
    netlist_pairs = (
        (("hsa", "chsa"), ("hfm", "chfm")) if include_sa else (("hfm", "chfm"),)
    )
    sections.append("## Netlists (extension: the paper's heuristics on hypergraphs)")
    sections.append("")
    sections.append(
        _fence(
            render_paper_table(
                "Clustered netlists (net-cut objective)",
                netlist_rows,
                base_pairs=netlist_pairs,
            )
        )
    )
    sections.append("")

    # Observation summary from the headline table.
    if degree3_rows:
        nonzero = [r for r in degree3_rows if r.expected_b]
        ratios = [cut_ratio(r.cut("kl"), r.expected_b) for r in nonzero]
        improvements = [
            cut_improvement_percent(r.cut("kl"), r.cut("ckl")) for r in nonzero
        ]
        sections.append("## Headline summary (Observations 1-2)")
        sections.append("")
        sections.append(
            f"* plain KL cut / planted width on degree-3 Gbreg: "
            f"{', '.join(f'{r:.1f}x' for r in ratios)} "
            f"(paper: 20-50x at 5000 vertices)"
        )
        sections.append(
            f"* compaction improvement for KL: mean {mean(improvements):.1f} % "
            f"(paper: >= 90 %)"
        )
        sections.append("")

    summary = engine.telemetry.summary()
    sections.append("## Engine telemetry")
    sections.append("")
    sections.append(
        f"* jobs: {summary['jobs']} ({summary['cache_hits']} cache hits, "
        f"{summary['executed']} executed, {summary['failed']} failed)"
    )
    sections.append(
        f"* compute time: {summary['compute_seconds']:.1f} s across "
        f"{engine.jobs} worker(s); wall time {timer.seconds:.1f} s"
    )
    sections.append("")
    sections.append(f"_Generated in {timer.seconds:.1f} s._")
    return "\n".join(sections)
