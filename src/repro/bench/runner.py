"""Experiment runner implementing the paper's measurement protocol.

Section VI: "For each graph we ran each procedure from two different
randomly generated initial bisections.  All bisection results reported
here will be based on the best solution of the two trials for that graph.
All timing results will be the total time it took the procedure to
complete both starting configurations (including the time to generate the
initial bisections)."

:func:`best_of_starts` is that protocol; :func:`compare_algorithms` runs a
whole algorithm suite on one graph and :func:`run_workload` sweeps a list
of workload cases into table rows.

All three now execute through the :mod:`repro.engine` job engine: each
start becomes a :class:`~repro.engine.job.Job` whose seed is derived from
the master generator exactly as :func:`repro.rng.spawn` would, so results
are bitwise identical to the historical in-process loop — and passing an
``engine`` configured with ``jobs=N`` fans the starts out across worker
processes (algorithms given as registry :class:`AlgorithmSpec` values
required; plain callables degrade to serial).  An engine with a cache
makes repeated sweeps near-free.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..engine.executor import Engine
from ..engine.job import Algorithm, AlgorithmSpec, Job, JobResult
from ..graphs.graph import Graph
from ..rng import derive_seed, resolve_rng, spawn

__all__ = [
    "Algorithm",
    "BestOfStarts",
    "RowResult",
    "best_of_starts",
    "compare_algorithms",
    "run_workload",
]

# An algorithm cell may be a (graph, rng) callable or a registry spec.
AlgorithmLike = Algorithm | AlgorithmSpec


@dataclass(frozen=True)
class BestOfStarts:
    """Best-of-N protocol outcome for one (graph, algorithm) cell.

    ``cut`` is the best of the per-start cuts; ``seconds`` is the *total*
    wall time over all starts, per the paper's timing convention.
    """

    cut: int
    seconds: float
    start_cuts: tuple[int, ...]
    start_seconds: tuple[float, ...]

    @property
    def starts(self) -> int:
        return len(self.start_cuts)


@dataclass(frozen=True)
class RowResult:
    """One table row: a graph (label + expected width) and all cell outcomes."""

    label: str
    expected_b: int | None
    cells: dict[str, BestOfStarts] = field(default_factory=dict)

    def cut(self, algorithm: str) -> int:
        return self.cells[algorithm].cut

    def seconds(self, algorithm: str) -> float:
        return self.cells[algorithm].seconds


def _start_jobs(
    graph_key: str,
    algorithm: AlgorithmLike,
    rng: random.Random,
    starts: int,
    prefix: str = "",
) -> list[Job]:
    """One job per start, seeded exactly as the serial spawn chain would."""
    return [
        Job(
            graph_key=graph_key,
            algorithm=algorithm,
            seed=derive_seed(rng, index),
            job_id=f"{prefix}start{index}",
            tags=(("start", index),),
        )
        for index in range(starts)
    ]


def _assemble(results: Sequence[JobResult]) -> BestOfStarts:
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} of {len(results)} starts failed "
            f"(first: {failed[0].job_id}: {failed[0].error})"
        )
    return BestOfStarts(
        cut=min(r.cut for r in results),
        seconds=sum(r.seconds for r in results),
        start_cuts=tuple(r.cut for r in results),
        start_seconds=tuple(r.seconds for r in results),
    )


def best_of_starts(
    graph: Graph,
    algorithm: AlgorithmLike,
    rng: random.Random | int | None = None,
    starts: int = 2,
    engine: Engine | None = None,
) -> BestOfStarts:
    """Run ``algorithm`` from ``starts`` independent random starts.

    Each start gets its own deterministic derived seed (so adding or
    reordering starts does not perturb the others), mirroring the paper's
    two-random-initial-bisections protocol.
    """
    if starts < 1:
        raise ValueError("need at least one start")
    rng = resolve_rng(rng)
    engine = engine if engine is not None else Engine()
    jobs = _start_jobs("graph", algorithm, rng, starts)
    return _assemble(engine.run(jobs, {"graph": graph}))


def compare_algorithms(
    graph: Graph,
    algorithms: Mapping[str, AlgorithmLike],
    rng: random.Random | int | None = None,
    starts: int = 2,
    label: str = "",
    expected_b: int | None = None,
    engine: Engine | None = None,
) -> RowResult:
    """Run every algorithm on ``graph`` under the best-of-starts protocol."""
    rng = resolve_rng(rng)
    engine = engine if engine is not None else Engine()
    names = sorted(algorithms)
    jobs: list[Job] = []
    for salt, name in enumerate(names):
        cell_rng = spawn(rng, salt)
        jobs.extend(
            _start_jobs("graph", algorithms[name], cell_rng, starts, prefix=f"{name}:")
        )
    results = engine.run(jobs, {"graph": graph})
    cells = {
        name: _assemble(results[i * starts : (i + 1) * starts])
        for i, name in enumerate(names)
    }
    return RowResult(label=label, expected_b=expected_b, cells=cells)


def run_workload(
    cases: Sequence,
    algorithms: Mapping[str, AlgorithmLike],
    rng: random.Random | int | None = None,
    starts: int = 2,
    engine: Engine | None = None,
) -> list[RowResult]:
    """Sweep workload ``cases`` (see :mod:`repro.bench.workloads`) into rows.

    Each case builds its graph(s) from its own child generator; cases with
    multiple seeds (the paper averages 3 random graphs per ``Gbreg``
    parameter point) contribute one row per seed — aggregation to
    per-parameter averages happens in the table renderer.

    The whole sweep is submitted as one engine batch, so with a parallel
    engine every (case, algorithm, start) cell runs concurrently.
    """
    rng = resolve_rng(rng)
    engine = engine if engine is not None else Engine()
    names = sorted(algorithms)
    graphs: dict[str, object] = {}
    jobs: list[Job] = []
    meta: list[tuple[str, int | None]] = []
    for salt, case in enumerate(cases):
        case_rng = spawn(rng, salt)
        key = f"case{salt}"
        graphs[key] = case.build(case_rng)
        meta.append((case.label, case.expected_b))
        for cell_salt, name in enumerate(names):
            cell_rng = spawn(case_rng, cell_salt)
            jobs.extend(
                _start_jobs(
                    key, algorithms[name], cell_rng, starts,
                    prefix=f"{key}:{name}:",
                )
            )
    results = engine.run(jobs, graphs)

    rows: list[RowResult] = []
    cursor = 0
    for label, expected_b in meta:
        cells = {}
        for name in names:
            cells[name] = _assemble(results[cursor : cursor + starts])
            cursor += starts
        rows.append(RowResult(label=label, expected_b=expected_b, cells=cells))
    return rows
