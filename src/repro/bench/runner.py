"""Experiment runner implementing the paper's measurement protocol.

Section VI: "For each graph we ran each procedure from two different
randomly generated initial bisections.  All bisection results reported
here will be based on the best solution of the two trials for that graph.
All timing results will be the total time it took the procedure to
complete both starting configurations (including the time to generate the
initial bisections)."

:func:`best_of_starts` is that protocol; :func:`compare_algorithms` runs a
whole algorithm suite on one graph and :func:`run_workload` sweeps a list
of workload cases into table rows.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import Graph
from ..rng import resolve_rng, spawn

__all__ = [
    "Algorithm",
    "BestOfStarts",
    "RowResult",
    "best_of_starts",
    "compare_algorithms",
    "run_workload",
]

# An algorithm takes (graph, rng) and returns a result exposing `.cut`.
Algorithm = Callable[[Graph, random.Random], Any]


@dataclass(frozen=True)
class BestOfStarts:
    """Best-of-N protocol outcome for one (graph, algorithm) cell.

    ``cut`` is the best of the per-start cuts; ``seconds`` is the *total*
    wall time over all starts, per the paper's timing convention.
    """

    cut: int
    seconds: float
    start_cuts: tuple[int, ...]
    start_seconds: tuple[float, ...]

    @property
    def starts(self) -> int:
        return len(self.start_cuts)


@dataclass(frozen=True)
class RowResult:
    """One table row: a graph (label + expected width) and all cell outcomes."""

    label: str
    expected_b: int | None
    cells: dict[str, BestOfStarts] = field(default_factory=dict)

    def cut(self, algorithm: str) -> int:
        return self.cells[algorithm].cut

    def seconds(self, algorithm: str) -> float:
        return self.cells[algorithm].seconds


def best_of_starts(
    graph: Graph,
    algorithm: Algorithm,
    rng: random.Random | int | None = None,
    starts: int = 2,
) -> BestOfStarts:
    """Run ``algorithm`` from ``starts`` independent random starts.

    Each start gets its own deterministic child generator (so adding or
    reordering starts does not perturb the others), mirroring the paper's
    two-random-initial-bisections protocol.
    """
    if starts < 1:
        raise ValueError("need at least one start")
    rng = resolve_rng(rng)
    cuts: list[int] = []
    times: list[float] = []
    for index in range(starts):
        child = spawn(rng, index)
        began = time.perf_counter()
        result = algorithm(graph, child)
        times.append(time.perf_counter() - began)
        cuts.append(result.cut)
    return BestOfStarts(
        cut=min(cuts),
        seconds=sum(times),
        start_cuts=tuple(cuts),
        start_seconds=tuple(times),
    )


def compare_algorithms(
    graph: Graph,
    algorithms: Mapping[str, Algorithm],
    rng: random.Random | int | None = None,
    starts: int = 2,
    label: str = "",
    expected_b: int | None = None,
) -> RowResult:
    """Run every algorithm on ``graph`` under the best-of-starts protocol."""
    rng = resolve_rng(rng)
    cells = {}
    for salt, (name, algorithm) in enumerate(sorted(algorithms.items())):
        cells[name] = best_of_starts(graph, algorithm, spawn(rng, salt), starts)
    return RowResult(label=label, expected_b=expected_b, cells=cells)


def run_workload(
    cases: Sequence,
    algorithms: Mapping[str, Algorithm],
    rng: random.Random | int | None = None,
    starts: int = 2,
) -> list[RowResult]:
    """Sweep workload ``cases`` (see :mod:`repro.bench.workloads`) into rows.

    Each case builds its graph(s) from its own child generator; cases with
    multiple seeds (the paper averages 3 random graphs per ``Gbreg``
    parameter point) contribute one row per seed — aggregation to
    per-parameter averages happens in the table renderer.
    """
    rng = resolve_rng(rng)
    rows: list[RowResult] = []
    for salt, case in enumerate(cases):
        case_rng = spawn(rng, salt)
        graph = case.build(case_rng)
        rows.append(
            compare_algorithms(
                graph,
                algorithms,
                rng=case_rng,
                starts=starts,
                label=case.label,
                expected_b=case.expected_b,
            )
        )
    return rows
