"""Paper-style table rendering.

The appendix tables have one row per graph (or per parameter point,
averaged over seeds) with, for each base algorithm ``x`` in {SA, KL}:

    b | b_x (time) | b_cx (time) | (b_x - b_cx)/b_x x 100 | rel. speed up %

:func:`render_paper_table` produces exactly that layout as monospace text;
:func:`render_generic_table` is the plain column formatter other benches
(ablation sweeps, observation summaries) build on.
"""

from __future__ import annotations

from collections.abc import Sequence
from statistics import mean

from .metrics import cut_improvement_percent, relative_speedup_percent
from .runner import RowResult

__all__ = [
    "render_generic_table",
    "render_paper_table",
    "aggregate_rows",
]


def render_generic_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Format rows as an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def aggregate_rows(rows: Sequence[RowResult]) -> list[RowResult]:
    """Average rows that share a label (the paper's 3-seeds-per-point mean).

    Cuts and times are arithmetic means over the group, rounded to one
    decimal via float cells downstream; ``expected_b`` must agree within a
    group.
    """
    grouped: dict[str, list[RowResult]] = {}
    order: list[str] = []
    for row in rows:
        if row.label not in grouped:
            order.append(row.label)
        grouped.setdefault(row.label, []).append(row)

    aggregated: list[RowResult] = []
    for label in order:
        group = grouped[label]
        expected = group[0].expected_b
        if any(r.expected_b != expected for r in group):
            raise ValueError(f"rows labelled {label!r} disagree on expected_b")
        if len(group) == 1:
            aggregated.append(group[0])
            continue
        names = group[0].cells.keys()
        cells = {}
        for name in names:
            outs = [r.cells[name] for r in group]
            # Re-wrap means in a BestOfStarts-shaped record for rendering.
            from .runner import BestOfStarts

            cells[name] = BestOfStarts(
                cut=round(mean(o.cut for o in outs), 1),
                seconds=mean(o.seconds for o in outs),
                start_cuts=tuple(o.cut for o in outs),
                start_seconds=tuple(o.seconds for o in outs),
            )
        aggregated.append(RowResult(label=label, expected_b=expected, cells=cells))
    return aggregated


def _fmt_cut(value) -> str:
    return f"{value:g}"


def render_paper_table(
    title: str,
    rows: Sequence[RowResult],
    base_pairs: Sequence[tuple[str, str]] = (("sa", "csa"), ("kl", "ckl")),
    average_seeds: bool = True,
) -> str:
    """Render rows in the appendix layout (cuts, times, improvements, speedups).

    ``base_pairs`` maps each base algorithm to its compacted variant; pairs
    missing from a row's cells are skipped (so the same renderer serves
    KL-only sweeps).
    """
    if average_seeds:
        rows = aggregate_rows(rows)

    headers = ["b"]
    for base, compacted in base_pairs:
        headers += [
            f"b{base}",
            f"t{base}(s)",
            f"b{compacted}",
            f"t{compacted}(s)",
            f"{base}: cut impr %",
            f"{base}: rel speedup %",
        ]

    table_rows = []
    for row in rows:
        cells: list[object] = [row.label if row.expected_b is None else row.expected_b]
        for base, compacted in base_pairs:
            if base not in row.cells or compacted not in row.cells:
                cells += ["-"] * 6
                continue
            plain = row.cells[base]
            comp = row.cells[compacted]
            cells += [
                _fmt_cut(plain.cut),
                f"{plain.seconds:.2f}",
                _fmt_cut(comp.cut),
                f"{comp.seconds:.2f}",
                f"{cut_improvement_percent(plain.cut, comp.cut):.1f}",
                f"{relative_speedup_percent(plain.seconds, comp.seconds):.1f}",
            ]
        table_rows.append(cells)
    return render_generic_table(headers, table_rows, title=title)
