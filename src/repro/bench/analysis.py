"""Statistical analysis of experiment outcomes.

Section VI makes two statistical claims beyond the tables:

* *win rates*: "On graphs of average degree of 2.5 to 3.5, when a
  noticeable difference was observed in the quality of the bisection
  returned, the Kernighan-Lin procedure had the better bisection sixty
  percent of the time."  → :func:`paired_comparison` with a
  noticeable-difference threshold.
* *consistency*: "In the quality of the solution returned, the
  Kernighan-Lin procedure was more consistent than simulated annealing.
  ... Simulated annealing occasionally showed large differences in the
  results of the two trials."  → :func:`trial_spread` /
  :func:`consistency_summary` over the per-start cuts the runner records.

These feed ``benchmarks/test_consistency.py``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from .runner import BestOfStarts, RowResult

__all__ = [
    "Summary",
    "summarize",
    "PairedComparison",
    "paired_comparison",
    "trial_spread",
    "consistency_summary",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Population summary statistics of ``values``."""
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    var = sum((v - mean) ** 2 for v in ordered) / n
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=float(ordered[0]),
        median=float(median),
        maximum=float(ordered[-1]),
    )


@dataclass(frozen=True)
class PairedComparison:
    """Head-to-head record of two algorithms over a row set.

    ``wins_a`` counts rows where ``a``'s cut beat ``b``'s by at least the
    noticeable-difference threshold; likewise ``wins_b``; everything else
    is a tie.  ``win_rate_a`` is a-wins over decided rows (NaN-free: None
    when nothing was decided).
    """

    algorithm_a: str
    algorithm_b: str
    wins_a: int
    wins_b: int
    ties: int
    mean_cut_a: float
    mean_cut_b: float

    @property
    def decided(self) -> int:
        return self.wins_a + self.wins_b

    @property
    def win_rate_a(self) -> float | None:
        if not self.decided:
            return None
        return self.wins_a / self.decided


def paired_comparison(
    rows: Sequence[RowResult],
    algorithm_a: str,
    algorithm_b: str,
    noticeable: int = 1,
) -> PairedComparison:
    """Compare two algorithms row by row (the paper's win-rate protocol).

    ``noticeable`` is the minimum cut difference that counts as a decision
    — the paper only scores rows "when a noticeable difference was
    observed".
    """
    if noticeable < 1:
        raise ValueError("noticeable difference must be at least 1")
    wins_a = wins_b = ties = 0
    cuts_a: list[float] = []
    cuts_b: list[float] = []
    for row in rows:
        a = row.cut(algorithm_a)
        b = row.cut(algorithm_b)
        cuts_a.append(a)
        cuts_b.append(b)
        if a + noticeable <= b:
            wins_a += 1
        elif b + noticeable <= a:
            wins_b += 1
        else:
            ties += 1
    if not rows:
        raise ValueError("need at least one row")
    return PairedComparison(
        algorithm_a=algorithm_a,
        algorithm_b=algorithm_b,
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        mean_cut_a=sum(cuts_a) / len(cuts_a),
        mean_cut_b=sum(cuts_b) / len(cuts_b),
    )


def trial_spread(outcome: BestOfStarts) -> int:
    """Cut spread across the starts of one cell (max - min).

    The paper's consistency observation is about exactly this quantity:
    SA's two trials "occasionally showed large differences".
    """
    return max(outcome.start_cuts) - min(outcome.start_cuts)


def consistency_summary(rows: Sequence[RowResult], algorithm: str) -> Summary:
    """Summary of per-row trial spreads for one algorithm."""
    return summarize([trial_spread(row.cells[algorithm]) for row in rows])
