"""Derived metrics matching the paper's reporting (Section IX preamble).

The appendix tables report, per graph and per base algorithm:

* the cut improvement from compaction as a percentage,
  ``(b_x - b_cx) / b_x * 100`` (column headers like ``(bsa - bcsa)/bsa x 100``);
* the relative speedup, ``(t_woc - t_c) / t_woc * 100`` where ``t_woc`` is
  the time without compaction and ``t_c`` the time with it ("Rel. speed
  up (%)");
* cut quality versus the planted/expected bisection width ``b``.

All percentages here follow those exact formulas so our tables read like
the paper's.
"""

from __future__ import annotations

import math

__all__ = [
    "cut_improvement_percent",
    "relative_speedup_percent",
    "cut_ratio",
    "geometric_mean",
]


def cut_improvement_percent(base_cut: float, compacted_cut: float) -> float:
    """Paper's improvement metric ``(b_x - b_cx) / b_x * 100``.

    Positive when compaction found a smaller cut.  When the base cut is 0
    the optimum was already found: improvement is 0 by convention (the
    compacted cut cannot be negative, and equal-zero means "no change").
    """
    if base_cut < 0 or compacted_cut < 0:
        raise ValueError("cuts must be nonnegative")
    if base_cut == 0:
        return 0.0
    return (base_cut - compacted_cut) / base_cut * 100.0


def relative_speedup_percent(time_without: float, time_with: float) -> float:
    """Paper's ``Rel. speed up = (t_woc - t_c) / t_woc * 100``.

    Positive when compaction was faster *overall* (coarse + final run);
    negative when it slowed the procedure down (the paper observes small
    slowdowns for CSA on some graphs).
    """
    if time_without <= 0:
        raise ValueError("time_without must be positive")
    return (time_without - time_with) / time_without * 100.0


def cut_ratio(found_cut: float, expected_b: float) -> float:
    """``found / expected`` — the "twenty to fifty times larger" factor of Obs. 1.

    ``inf`` when the expected width is 0 but a positive cut was found.
    """
    if expected_b == 0:
        return 0.0 if found_cut == 0 else math.inf
    return found_cut / expected_b


def geometric_mean(values: list[float]) -> float:
    """Geometric mean with a +1 shift so zero cuts do not collapse the mean.

    Used for aggregating improvement factors across a table's rows:
    ``gm(values) = exp(mean(log(1 + v))) - 1``.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be nonnegative")
    return math.exp(sum(math.log1p(v) for v in values) / len(values)) - 1.0
