"""Experiment harness: protocol runner, metrics, table rendering, workloads."""

from .ascii import histogram, horizontal_bars, sparkline
from .analysis import (
    PairedComparison,
    Summary,
    consistency_summary,
    paired_comparison,
    summarize,
    trial_spread,
)
from .report import generate_report
from .metrics import (
    cut_improvement_percent,
    cut_ratio,
    geometric_mean,
    relative_speedup_percent,
)
from .runner import (
    Algorithm,
    BestOfStarts,
    RowResult,
    best_of_starts,
    compare_algorithms,
    run_workload,
)
from .tables import aggregate_rows, render_generic_table, render_paper_table
from .workloads import (
    Scale,
    WorkloadCase,
    btree_cases,
    current_scale,
    g2set_cases,
    gbreg_cases,
    gnp_cases,
    grid_cases,
    ladder_cases,
    netlist_algorithm_specs,
    netlist_algorithms,
    netlist_cases,
    standard_algorithm_specs,
    standard_algorithms,
)

__all__ = [
    "cut_improvement_percent",
    "relative_speedup_percent",
    "cut_ratio",
    "geometric_mean",
    "best_of_starts",
    "compare_algorithms",
    "run_workload",
    "Algorithm",
    "BestOfStarts",
    "RowResult",
    "render_generic_table",
    "render_paper_table",
    "aggregate_rows",
    "Scale",
    "WorkloadCase",
    "current_scale",
    "standard_algorithms",
    "standard_algorithm_specs",
    "netlist_algorithms",
    "netlist_algorithm_specs",
    "netlist_cases",
    "gbreg_cases",
    "g2set_cases",
    "gnp_cases",
    "ladder_cases",
    "grid_cases",
    "btree_cases",
    "generate_report",
    "summarize",
    "Summary",
    "paired_comparison",
    "PairedComparison",
    "trial_spread",
    "consistency_summary",
    "sparkline",
    "horizontal_bars",
    "histogram",
]
