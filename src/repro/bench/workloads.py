"""Workload definitions for every paper table, with a scale knob.

The paper's sweeps run to 5000 vertices with C on a VAX 780; pure Python
reproduces the same *shapes* at a smaller default scale.  Set the
``REPRO_SCALE`` environment variable to pick:

* ``smoke``  — seconds; used by the test suite's end-to-end checks.
* ``ci``     — the default; minutes for the full bench suite.  Graph
  sizes in the low hundreds-to-thousand, 1 seed per parameter point.
* ``paper``  — the paper's actual sizes (2000- and 5000-vertex tables,
  3 seeds per ``Gbreg`` point, 7 per ``Gnp`` point).  Hours in pure
  Python; run it for the full EXPERIMENTS.md regeneration.

Every workload case is a :class:`WorkloadCase`: a label, the expected
bisection width (``None`` when the model does not plant one), and a
deterministic graph builder.
"""

from __future__ import annotations

import os
import random
from collections.abc import Callable
from dataclasses import dataclass

from ..engine.job import AlgorithmSpec
from ..engine.registry import build_algorithm
from ..graphs.generators import (
    binary_tree,
    g2set_with_degree,
    gbreg,
    gnp_with_degree,
    grid_graph,
    ladder_graph,
)
from ..graphs.graph import Graph

__all__ = [
    "STUDY_GBREG_DEGREES",
    "STUDY_GNP_DEGREES",
    "Scale",
    "WorkloadCase",
    "current_scale",
    "parity_fixed_width",
    "standard_algorithms",
    "standard_algorithm_specs",
    "netlist_algorithms",
    "netlist_algorithm_specs",
    "gbreg_cases",
    "g2set_cases",
    "gnp_cases",
    "ladder_cases",
    "grid_cases",
    "btree_cases",
    "netlist_cases",
]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing for one scale tier."""

    name: str
    random_graph_sizes: tuple[int, ...]  # 2n for Gbreg / G2set / Gnp tables
    seeds_per_point: int
    gnp_seeds_per_point: int
    starts: int
    sa_size_factor: int
    special_sizes: tuple[int, ...]  # approximate vertex counts for specials
    gbreg_widths: tuple[int, ...]  # planted-b sweep (filtered for parity)
    g2set_widths: tuple[int, ...]


_SCALES = {
    "smoke": Scale(
        name="smoke",
        random_graph_sizes=(120,),
        seeds_per_point=1,
        gnp_seeds_per_point=1,
        starts=1,
        sa_size_factor=2,
        special_sizes=(64,),
        gbreg_widths=(2, 8),
        g2set_widths=(8,),
    ),
    "ci": Scale(
        name="ci",
        random_graph_sizes=(500,),
        seeds_per_point=1,
        gnp_seeds_per_point=2,
        starts=2,
        sa_size_factor=4,
        special_sizes=(100, 484),
        gbreg_widths=(2, 4, 8, 16),
        g2set_widths=(4, 8, 16),
    ),
    "paper": Scale(
        name="paper",
        random_graph_sizes=(2000, 5000),
        seeds_per_point=3,
        gnp_seeds_per_point=7,
        starts=2,
        sa_size_factor=8,
        special_sizes=(100, 484, 1024, 5000),
        gbreg_widths=(2, 4, 8, 16, 32, 64),
        g2set_widths=(4, 8, 16, 32, 64),
    ),
}


def current_scale() -> Scale:
    """The active :class:`Scale`, from ``REPRO_SCALE`` (default ``ci``)."""
    name = os.environ.get("REPRO_SCALE", "ci").lower()
    if name not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


def standard_algorithm_specs(
    scale: Scale, include_sa: bool = True
) -> dict[str, AlgorithmSpec]:
    """The paper's four procedures as engine :class:`AlgorithmSpec` values.

    Specs (unlike the callables from :func:`standard_algorithms`) are
    picklable and cacheable, so they are what the parallel engine and the
    result cache consume.  SA and CSA carry the scale tier's temperature
    length (``size_factor * |V|``).
    """
    specs = {
        "kl": AlgorithmSpec.make("kl"),
        "ckl": AlgorithmSpec.make("ckl"),
    }
    if include_sa:
        specs["sa"] = AlgorithmSpec.make("sa", size_factor=scale.sa_size_factor)
        specs["csa"] = AlgorithmSpec.make("csa", size_factor=scale.sa_size_factor)
    return specs


def standard_algorithms(scale: Scale, include_sa: bool = True) -> dict:
    """The paper's four procedures as ``(graph, rng) -> result`` callables.

    Built from :func:`standard_algorithm_specs` through the engine
    registry, so the two forms are guaranteed to agree; set
    ``include_sa=False`` for the KL-only sweeps (SA dominates wall time,
    exactly as the paper found).
    """
    return {
        name: build_algorithm(spec)
        for name, spec in standard_algorithm_specs(scale, include_sa).items()
    }


@dataclass(frozen=True)
class WorkloadCase:
    """A parameter point: label, planted width (or None), graph builder."""

    label: str
    expected_b: int | None
    build: Callable[[random.Random], Graph]


def _parity_fix(two_n: int, d: int, b: int) -> int:
    """Round ``b`` up to the nearest ``Gbreg``-feasible width."""
    n = two_n // 2
    return b if (n * d - b) % 2 == 0 else b + 1


def parity_fixed_width(two_n: int, degree: int, width: int) -> int:
    """Public :func:`_parity_fix`: the nearest feasible ``Gbreg`` width.

    The ensemble ``study`` sweeps build their own cells (one fixed graph,
    hundreds of heuristic seeds) rather than :class:`WorkloadCase` lists,
    but must respect the same stub-parity constraint the table sweeps do.
    """
    return _parity_fix(two_n, degree, width)


#: Degree sweep for the planted-vs-random phase study on ``Gbreg(2n, b, d)``:
#: at low degree the planted width-``b`` cut is not optimal (random-like
#: phase, heuristics beat it); as the degree grows every other cut inflates
#: until the planted bisection is the clear optimum (planted phase).
STUDY_GBREG_DEGREES = (2, 3, 4, 5, 6)

#: Degree sweep for the ``Gnp`` phase study, bracketing the critical mean
#: degree ``2 ln 2 ≈ 1.386`` below which the bisection width vanishes
#: (Percus et al., *The Peculiar Phase Structure of Random Graph Bisection*).
STUDY_GNP_DEGREES = (0.8, 1.1, 1.4, 1.7, 2.2, 3.0)


def gbreg_cases(scale: Scale, degree: int) -> list[WorkloadCase]:
    """``Gbreg(2n, b, d)`` sweep (appendix tables, d = 3 and d = 4)."""
    cases = []
    for two_n in scale.random_graph_sizes:
        widths = sorted({_parity_fix(two_n, degree, b) for b in scale.gbreg_widths})
        for b in widths:
            for seed in range(scale.seeds_per_point):
                cases.append(
                    WorkloadCase(
                        label=f"Gbreg({two_n},{b},{degree})",
                        expected_b=b,
                        build=(
                            lambda rng, two_n=two_n, b=b: gbreg(two_n, b, degree, rng).graph
                        ),
                    )
                )
                del seed  # seeds differ via the runner's per-case child rng
    return cases


def g2set_cases(scale: Scale, avg_degree: float) -> list[WorkloadCase]:
    """``G2set(2n, pA, pB, b)`` sweep at one average degree (appendix tables)."""
    cases = []
    for two_n in scale.random_graph_sizes:
        for b in scale.g2set_widths:
            for seed in range(scale.seeds_per_point):
                cases.append(
                    WorkloadCase(
                        label=f"G2set({two_n},deg{avg_degree},{b})",
                        expected_b=b,
                        build=(
                            lambda rng, two_n=two_n, b=b: g2set_with_degree(
                                two_n, avg_degree, b, rng
                            ).graph
                        ),
                    )
                )
                del seed
    return cases


def gnp_cases(scale: Scale) -> list[WorkloadCase]:
    """``Gnp(2n, p)`` degree sweep (appendix Gnp tables, no planted width)."""
    cases = []
    for two_n in scale.random_graph_sizes:
        for avg_degree in (1.5, 2.0, 2.5, 3.0, 4.0):
            for seed in range(scale.gnp_seeds_per_point):
                cases.append(
                    WorkloadCase(
                        label=f"Gnp({two_n},deg{avg_degree})",
                        expected_b=None,
                        build=(
                            lambda rng, two_n=two_n, deg=avg_degree: gnp_with_degree(
                                two_n, deg, rng
                            )
                        ),
                    )
                )
                del seed
    return cases


def ladder_cases(scale: Scale) -> list[WorkloadCase]:
    """Ladder graphs (appendix "Ladder graphs" table; optimum cut is 2)."""
    return [
        WorkloadCase(
            label=f"ladder({size})",
            expected_b=2,
            build=(lambda rng, rungs=size // 2: ladder_graph(rungs)),
        )
        for size in scale.special_sizes
        if size >= 8
    ]


def grid_cases(scale: Scale) -> list[WorkloadCase]:
    """Square grids (appendix "Grid graphs" table; optimum cut is the side)."""
    cases = []
    for size in scale.special_sizes:
        side = max(int(round(size**0.5)), 2)
        if side % 2:
            side += 1  # even side => an exactly balanced straight cut exists
        cases.append(
            WorkloadCase(
                label=f"grid({side}x{side})",
                expected_b=side,
                build=(lambda rng, side=side: grid_graph(side, side)),
            )
        )
    return cases


def netlist_cases(scale: Scale) -> list[WorkloadCase]:
    """Clustered synthetic netlists (the VLSI-domain extension workload).

    Cases build :class:`~repro.hypergraph.Hypergraph` objects; pair them
    with :func:`netlist_algorithms` (graph algorithms do not apply).
    """
    from ..hypergraph.generators import random_netlist

    cases = []
    for two_n in scale.random_graph_sizes:
        for seed in range(scale.seeds_per_point):
            cases.append(
                WorkloadCase(
                    label=f"netlist({two_n})",
                    expected_b=None,
                    build=(lambda rng, cells=two_n: random_netlist(cells, rng=rng)),
                )
            )
            del seed
    return cases


def netlist_algorithm_specs(
    scale: Scale, include_sa: bool = True
) -> dict[str, AlgorithmSpec]:
    """Netlist bisectors as engine specs (see :func:`netlist_algorithms`)."""
    specs = {
        "hfm": AlgorithmSpec.make("hfm"),
        "chfm": AlgorithmSpec.make("chfm"),
    }
    if include_sa:
        specs["hsa"] = AlgorithmSpec.make("hsa", size_factor=scale.sa_size_factor)
        specs["chsa"] = AlgorithmSpec.make("chsa", size_factor=scale.sa_size_factor)
    return specs


def netlist_algorithms(scale: Scale, include_sa: bool = True) -> dict:
    """Netlist bisectors as ``(hypergraph, rng) -> result`` callables.

    ``hfm``/``chfm`` mirror KL/CKL (deterministic-ish local search, plain
    and compacted); ``hsa``/``chsa`` mirror SA/CSA.
    """
    return {
        name: build_algorithm(spec)
        for name, spec in netlist_algorithm_specs(scale, include_sa).items()
    }


def btree_cases(scale: Scale) -> list[WorkloadCase]:
    """Binary trees (appendix "Binary trees" table; no planted width)."""
    return [
        WorkloadCase(
            label=f"btree({size})",
            expected_b=None,
            build=(lambda rng, n=size: binary_tree(n)),
        )
        for size in scale.special_sizes
        if size >= 16
    ]
