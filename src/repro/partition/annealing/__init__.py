"""Simulated annealing bisection: the algorithm, schedules, and cost models."""

from .cost import BalanceCost
from .sa import SAResult, simulated_annealing
from .schedule import AnnealingSchedule, estimate_initial_temperature

__all__ = [
    "simulated_annealing",
    "SAResult",
    "AnnealingSchedule",
    "estimate_initial_temperature",
    "BalanceCost",
]
