"""Simulated annealing graph bisection (paper Fig. 1, [KGV83], [JCAMS84]).

The state space is *all* two-way partitions; a move flips one random
vertex to the other side; cost is the imbalance-penalized cut of
:class:`~repro.partition.annealing.cost.BalanceCost`.  Moves follow the
Metropolis rule: downhill always accepted, uphill with probability
``exp(-delta / T)``.

Two details the paper's Section VII calls out are implemented here:

* **best-seen tracking** — "simulated annealing may migrate away from an
  optimal solution if it is found at a high temperature.  One must then
  save the best bisection found as the algorithm progresses."  The best
  *balanced* assignment ever visited is kept and returned.
* **schedule sensitivity** — every schedule knob is explicit (see
  :class:`~repro.partition.annealing.schedule.AnnealingSchedule`), and the
  ablation bench sweeps them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from operator import mul

from ...graphs.csr import CSRGraph, csr_view
from ...graphs.graph import Graph
from ...kernels import kernel_backend
from ...kernels.gains import cut_weight as kernel_cut_weight
from ...kernels.gains import side_weights as kernel_side_weights
from ...kernels.sa import flip_walk
from ...obs import counter, gauge, histogram, obs_enabled, span
from ...obs.metrics import RATIO_BUCKETS
from ...rng import resolve_rng
from ..bisection import Bisection, cut_weight, default_tolerance, rebalance, side_weights
from ..random_init import random_assignment
from .cost import BalanceCost
from .schedule import AnnealingSchedule, estimate_initial_temperature

__all__ = ["simulated_annealing", "SAResult"]


@dataclass(frozen=True)
class SAResult:
    """Outcome of a simulated annealing run.

    ``bisection`` is the best balanced configuration seen (rebalanced from
    the best near-balanced incumbent if the walk never touched an exactly
    balanced state).  ``temperature_trace`` holds
    ``(temperature, acceptance_ratio, current_cut)`` per cooling step for
    schedule diagnostics; it is empty when the run was started with
    ``record_trace=False`` (long anneals on large graphs otherwise hold
    O(temperatures) tuples nobody reads — the perf harness opts out).
    """

    bisection: Bisection
    initial_cut: int
    temperatures: int
    moves_attempted: int
    moves_accepted: int
    final_temperature: float
    initial_temperature: float
    temperature_trace: list[tuple[float, float, int]] = field(default_factory=list)
    # The balance tolerance the run was asked to honor and the imbalance of
    # the start it was handed — provenance for the verification oracles, which
    # re-check the returned bisection and gate the best-vs-initial comparison
    # on whether the walk actually started balanced (a projected coarse start
    # may not be).
    balance_tolerance: int | None = None
    initial_imbalance: int | None = None

    @property
    def cut(self) -> int:
        return self.bisection.cut

    @property
    def acceptance_ratio(self) -> float:
        if self.moves_attempted == 0:
            return 0.0
        return self.moves_accepted / self.moves_attempted


def _sample_initial_temperature(
    graph: Graph,
    assignment: dict,
    vertices: list,
    cost: BalanceCost,
    schedule: AnnealingSchedule,
    rng: random.Random,
) -> float:
    """Estimate T0 from the uphill deltas of a burst of random trial moves."""
    w0, w1 = side_weights(graph, assignment)
    diff = w0 - w1
    deltas = []
    sample_size = min(max(200, graph.num_vertices), 4 * graph.num_vertices)
    for _ in range(sample_size):
        v = vertices[rng.randrange(len(vertices))]
        side_v = assignment[v]
        cut_delta = 0
        for u, w in graph.neighbor_items(v):
            cut_delta += w if assignment[u] == side_v else -w
        signed_weight = graph.vertex_weight(v) if side_v == 0 else -graph.vertex_weight(v)
        delta = cost.move_delta(cut_delta, diff, signed_weight)
        if delta > 0:
            deltas.append(delta)
    return estimate_initial_temperature(deltas, schedule.initial_acceptance)


def _sample_initial_temperature_csr(
    csr: CSRGraph,
    sides: list[int],
    diff: int,
    cost: BalanceCost,
    schedule: AnnealingSchedule,
    rng: random.Random,
) -> float:
    """CSR twin of :func:`_sample_initial_temperature`.

    Consumes the same ``rng.randrange`` draws over the same insertion-order
    vertex indexing and funnels each trial through ``cost.move_delta``
    verbatim, so the estimated T0 is bit-identical to the dict path's.
    """
    n = csr.num_vertices
    sides_get = sides.__getitem__
    nbrs = csr.neighbor_lists()
    wts = None if csr.unit_edge_weights else csr.weight_lists()
    wdeg = csr.weighted_degrees()
    vweights = csr.vertex_weight_list()
    randrange = rng.randrange
    deltas = []
    sample_size = min(max(200, n), 4 * n)
    for _ in range(sample_size):
        i = randrange(n)
        row = nbrs[i]
        if wts is None:
            s1 = sum(map(sides_get, row))
        else:
            s1 = sum(map(mul, wts[i], map(sides_get, row)))
        # cut_delta is (same-side weight) - (other-side weight), as in the
        # dict kernel's accumulation.
        cut_delta = wdeg[i] - 2 * s1 if sides[i] == 0 else 2 * s1 - wdeg[i]
        signed_weight = vweights[i] if sides[i] == 0 else -vweights[i]
        delta = cost.move_delta(cut_delta, diff, signed_weight)
        if delta > 0:
            deltas.append(delta)
    return estimate_initial_temperature(deltas, schedule.initial_acceptance)


def _anneal_flip_csr(
    graph: Graph,
    assignment: dict,
    rng: random.Random,
    schedule: AnnealingSchedule,
    cost: BalanceCost,
    balance_tolerance: int,
    record_trace: bool,
    backend: str,
) -> SAResult:
    """The flip-neighborhood Metropolis walk over the CSR view.

    Bit-identical to the dict loop in :func:`simulated_annealing`: vertex
    ids follow insertion order so the index draws pick the same vertices,
    the uniform draw is consumed under exactly the same condition
    (``delta > 0``), and every decision float is computed from the same
    expressions.  The sweep itself lives in :mod:`repro.kernels.sa`
    (buffered lagged-Fibonacci stream, per-side penalty precompute,
    per-temperature exp memo); this wrapper owns the framing — initial
    state, T0 sampling, and the result envelope.
    """
    csr = csr_view(graph)
    sides = csr.sides_list(assignment)

    cut = kernel_cut_weight(csr, sides, backend)
    initial_cut = cut
    w0, w1 = kernel_side_weights(csr, sides, backend)
    diff = w0 - w1
    initial_imbalance = abs(diff)

    temperature = _sample_initial_temperature_csr(csr, sides, diff, cost, schedule, rng)

    walk = flip_walk(
        csr,
        sides,
        cut,
        diff,
        temperature,
        rng,
        schedule,
        cost.alpha,
        balance_tolerance,
        record_trace,
        backend,
    )

    if walk.best_sides is None:
        best_assignment = rebalance(
            graph, csr.assignment_dict(walk.sides), balance_tolerance, rng
        )
    else:
        best_assignment = csr.assignment_dict(walk.best_sides)

    return SAResult(
        bisection=Bisection(graph, best_assignment),
        initial_cut=initial_cut,
        temperatures=walk.temperatures,
        moves_attempted=walk.attempted,
        moves_accepted=walk.accepted,
        final_temperature=walk.final_temperature,
        initial_temperature=temperature,
        temperature_trace=walk.trace,
        balance_tolerance=balance_tolerance,
        initial_imbalance=initial_imbalance,
    )


def simulated_annealing(
    graph: Graph,
    init: Bisection | None = None,
    rng: random.Random | int | None = None,
    schedule: AnnealingSchedule | None = None,
    cost: BalanceCost | None = None,
    balance_tolerance: int | None = None,
    neighborhood: str = "flip",
    record_trace: bool = True,
) -> SAResult:
    """Bisect ``graph`` with simulated annealing.

    ``init`` seeds the walk (used by compacted SA); otherwise a random
    balanced bisection drawn from ``rng``.  The returned bisection is
    always balanced to ``balance_tolerance`` (default: the graph's minimum
    achievable imbalance).

    ``neighborhood`` selects the move set: ``"flip"`` (Johnson et al.'s
    single-vertex move over all partitions, the default) or ``"swap"``
    (exchange one vertex from each side — on unit-weight graphs balance
    never changes, at the cost of slower mixing; the classic tradeoff
    the imbalance-penalty design exists to avoid).

    ``record_trace=False`` skips collecting ``temperature_trace`` (the
    run itself is unaffected — the trace is purely diagnostic).

    The flip neighborhood runs on the graph's CSR view when enabled
    (``REPRO_NO_CSR=1`` disables): every decision is RNG- and
    arithmetic-driven over the same insertion-order vertex indexing, so
    the walk is bit-identical to the dict path's.
    """
    with span("sa.run", vertices=graph.num_vertices, neighborhood=neighborhood):
        result = _simulated_annealing_impl(
            graph,
            init,
            rng,
            schedule,
            cost,
            balance_tolerance,
            neighborhood,
            record_trace,
        )
    _record_sa_obs(result)
    return result


def _record_sa_obs(result: SAResult) -> None:
    """Flush SA counters from a finished result — never touches the walk."""
    if not obs_enabled():
        return
    counter("sa_runs_total").inc()
    counter("sa_temperatures_total").inc(result.temperatures)
    counter("sa_moves_attempted_total").inc(result.moves_attempted)
    counter("sa_moves_accepted_total").inc(result.moves_accepted)
    gauge("sa_final_temperature").set(result.final_temperature)
    gauge("sa_acceptance_ratio").set(result.acceptance_ratio)
    if result.temperature_trace:
        histogram("sa_temperature_acceptance_ratio", buckets=RATIO_BUCKETS).observe_many(
            ratio for _temperature, ratio, _cut in result.temperature_trace
        )


def _simulated_annealing_impl(
    graph: Graph,
    init: Bisection | None,
    rng: random.Random | int | None,
    schedule: AnnealingSchedule | None,
    cost: BalanceCost | None,
    balance_tolerance: int | None,
    neighborhood: str,
    record_trace: bool,
) -> SAResult:
    if neighborhood not in ("flip", "swap"):
        raise ValueError(f"neighborhood must be 'flip' or 'swap', got {neighborhood!r}")
    if graph.num_vertices == 0:
        raise ValueError("cannot bisect the empty graph")
    rng = resolve_rng(rng)
    schedule = schedule or AnnealingSchedule()
    cost = cost or BalanceCost()
    if balance_tolerance is None:
        balance_tolerance = default_tolerance(graph)

    if init is not None:
        if init.graph is not graph and init.graph != graph:
            raise ValueError("init bisection belongs to a different graph")
        assignment = init.assignment()
    else:
        assignment = random_assignment(graph, rng)

    backend = kernel_backend()
    if neighborhood == "flip" and backend != "dict":
        return _anneal_flip_csr(
            graph, assignment, rng, schedule, cost, balance_tolerance, record_trace,
            backend,
        )

    vertices = list(graph.vertices())
    n = len(vertices)
    weight = {v: graph.vertex_weight(v) for v in vertices}

    cut = cut_weight(graph, assignment)
    initial_cut = cut
    w0, w1 = side_weights(graph, assignment)
    diff = w0 - w1
    initial_imbalance = abs(diff)

    best_cut = cut if abs(diff) <= balance_tolerance else None
    best_assignment = dict(assignment) if best_cut is not None else None

    temperature = _sample_initial_temperature(graph, assignment, vertices, cost, schedule, rng)
    initial_temperature = temperature
    moves_per_temp = schedule.moves_per_temperature(n)
    cutoff = schedule.acceptance_cutoff(n)

    attempted = accepted = 0
    temperatures = 0
    stale = 0
    trace: list[tuple[float, float, int]] = []

    rand = rng.random
    randrange = rng.randrange
    alpha = cost.alpha

    # Per-side vertex lists for the swap neighborhood (O(1) exchange).
    side_lists: tuple[list, list] = ([], [])
    if neighborhood == "swap":
        for v in vertices:
            side_lists[assignment[v]].append(v)
        if not side_lists[0] or not side_lists[1]:
            raise ValueError("swap neighborhood needs vertices on both sides")

    def move_gain(v, side_v: int) -> int:
        g = 0
        for u, w in graph.neighbor_items(v):
            g += w if assignment[u] == side_v else -w
        return g

    while not schedule.is_frozen(stale, temperature):
        if temperatures >= schedule.max_temperatures:
            break
        accepted_here = 0
        attempted_here = 0
        improved_best = False
        for _ in range(moves_per_temp):
            if cutoff is not None and accepted_here >= cutoff:
                break  # Johnson's cutoff: this temperature has equilibrated
            attempted_here += 1
            if neighborhood == "flip":
                v = vertices[randrange(n)]
                side_v = assignment[v]
                cut_delta = move_gain(v, side_v)
                wv = weight[v]
                new_diff = diff - 2 * wv if side_v == 0 else diff + 2 * wv
                delta = cut_delta + alpha * (new_diff * new_diff - diff * diff)
                if delta <= 0 or rand() < math.exp(-delta / temperature):
                    assignment[v] = 1 - side_v
                    cut += cut_delta
                    diff = new_diff
                    accepted_here += 1
                    if abs(diff) <= balance_tolerance and (
                        best_cut is None or cut < best_cut
                    ):
                        best_cut = cut
                        best_assignment = dict(assignment)
                        improved_best = True
            else:  # swap
                i = randrange(len(side_lists[0]))
                j = randrange(len(side_lists[1]))
                a = side_lists[0][i]
                b = side_lists[1][j]
                cut_delta = move_gain(a, 0) + move_gain(b, 1) + 2 * graph.edge_weight(a, b)
                new_diff = diff - 2 * weight[a] + 2 * weight[b]
                delta = cut_delta + alpha * (new_diff * new_diff - diff * diff)
                if delta <= 0 or rand() < math.exp(-delta / temperature):
                    assignment[a] = 1
                    assignment[b] = 0
                    side_lists[0][i] = b
                    side_lists[1][j] = a
                    cut += cut_delta
                    diff = new_diff
                    accepted_here += 1
                    if abs(diff) <= balance_tolerance and (
                        best_cut is None or cut < best_cut
                    ):
                        best_cut = cut
                        best_assignment = dict(assignment)
                        improved_best = True
        attempted += attempted_here
        accepted += accepted_here
        ratio = accepted_here / attempted_here if attempted_here else 0.0
        if record_trace:
            trace.append((temperature, ratio, cut))
        temperatures += 1
        if ratio < schedule.min_acceptance and not improved_best:
            stale += 1
        else:
            stale = 0
        temperature = schedule.next_temperature(temperature)

    if best_assignment is None:
        # The walk never touched a balanced state (possible with a tiny
        # alpha); repair the final incumbent instead.
        best_assignment = rebalance(graph, dict(assignment), balance_tolerance, rng)

    return SAResult(
        bisection=Bisection(graph, best_assignment),
        initial_cut=initial_cut,
        temperatures=temperatures,
        moves_attempted=attempted,
        moves_accepted=accepted,
        final_temperature=temperature,
        initial_temperature=initial_temperature,
        temperature_trace=trace,
        balance_tolerance=balance_tolerance,
        initial_imbalance=initial_imbalance,
    )
