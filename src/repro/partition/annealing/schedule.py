"""Annealing schedules: initial temperature, cooling, equilibrium, freezing.

The paper's Figure 1 is the generic loop — "get initial temperature",
"while not yet frozen", "while not yet in equilibrium", "reduce
temperature".  This module supplies concrete, tunable policies:

* **initial temperature** — chosen so a target fraction of uphill moves is
  accepted at the start (Johnson et al.'s recipe), solved by bisection on
  the empirical uphill deltas of a random-move sample;
* **equilibrium** — a fixed number of attempted moves per temperature,
  ``size_factor * |V|`` (temperature length proportional to neighborhood
  size);
* **cooling** — geometric, ``T <- cooling_ratio * T``;
* **frozen** — ``freeze_limit`` consecutive temperatures whose acceptance
  ratio is below ``min_acceptance`` and which produced no new best-seen
  cost.

The paper's Section VII warns that "fine tuning of the annealing schedule
can be a big job"; the ablation bench ``bench_ablation_sa_schedule``
sweeps these knobs to reproduce that observation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["AnnealingSchedule", "estimate_initial_temperature"]


def estimate_initial_temperature(
    uphill_deltas: Sequence[float],
    target_acceptance: float = 0.4,
    tolerance: float = 1e-3,
) -> float:
    """Temperature at which the mean uphill acceptance hits ``target_acceptance``.

    Solves ``mean(exp(-delta / T)) = target_acceptance`` over the sampled
    positive deltas by bisection.  With no uphill samples (e.g. the cost
    landscape is flat from the start) returns 1.0, which makes the walk
    maximally free — harmless, since freezing will end it.
    """
    deltas = [d for d in uphill_deltas if d > 0]
    if not deltas:
        return 1.0
    if not 0.0 < target_acceptance < 1.0:
        raise ValueError("target_acceptance must be in (0, 1)")

    def acceptance(temp: float) -> float:
        return sum(math.exp(-d / temp) for d in deltas) / len(deltas)

    lo, hi = 1e-9, max(deltas)
    while acceptance(hi) < target_acceptance:
        hi *= 2.0
        if hi > 1e12:
            return hi
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if acceptance(mid) < target_acceptance:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * hi:
            break
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class AnnealingSchedule:
    """Knobs of the geometric annealing schedule (see module docstring).

    ``max_temperatures`` is a hard safety cap on the number of cooling
    steps; the normal exit is the freeze test.
    """

    initial_acceptance: float = 0.4
    cooling_ratio: float = 0.95
    size_factor: int = 8
    min_acceptance: float = 0.02
    freeze_limit: int = 5
    max_temperatures: int = 500
    min_temperature: float = 1e-6
    cutoff_factor: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling_ratio < 1.0:
            raise ValueError("cooling_ratio must be in (0, 1)")
        if self.size_factor < 1:
            raise ValueError("size_factor must be at least 1")
        if self.freeze_limit < 1:
            raise ValueError("freeze_limit must be at least 1")
        if self.cutoff_factor is not None and not 0.0 < self.cutoff_factor <= 1.0:
            raise ValueError("cutoff_factor must be in (0, 1]")

    def moves_per_temperature(self, num_vertices: int) -> int:
        """Temperature length: attempted moves before each cooling step."""
        return self.size_factor * max(num_vertices, 1)

    def acceptance_cutoff(self, num_vertices: int) -> int | None:
        """Johnson's cutoff: leave a temperature early after this many
        *accepted* moves (high temperatures accept nearly everything, so
        full-length equilibration there is wasted work).  ``None`` when
        the cutoff is disabled."""
        if self.cutoff_factor is None:
            return None
        return max(1, int(self.cutoff_factor * self.moves_per_temperature(num_vertices)))

    def next_temperature(self, temp: float) -> float:
        return temp * self.cooling_ratio

    def is_frozen(self, stale_temperatures: int, temp: float) -> bool:
        """Freeze test given consecutive low-acceptance/no-improvement temps."""
        return stale_temperatures >= self.freeze_limit or temp < self.min_temperature
