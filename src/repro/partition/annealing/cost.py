"""Cost functions for annealing-based bisection.

Following Johnson, Aragon, McGeoch & Schevon (the paper's [JCAMS84]
reference), the annealer searches over *all* two-way partitions — not just
balanced ones — and penalizes imbalance in the cost function:

    cost(partition) = cut_weight + alpha * (w(A) - w(B))**2

with the imbalance factor ``alpha`` (Johnson et al. use values around
0.05).  Letting the search pass through unbalanced states is what makes
the single-vertex-move neighborhood connected; the penalty pressure keeps
the incumbent near balance so the best *balanced* configuration seen is
close to the raw incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BalanceCost"]


@dataclass(frozen=True)
class BalanceCost:
    """Imbalance-penalized cut cost with O(deg) move deltas.

    ``alpha`` trades cut quality against balance pressure: larger values
    confine the walk to nearly balanced states (slower mixing), smaller
    values let it wander (cheaper cuts that may be expensive to rebalance).
    """

    alpha: float = 0.05

    def total(self, cut: int, weight_diff: int) -> float:
        """Full cost of a state with the given cut and ``w(A) - w(B)``."""
        return cut + self.alpha * weight_diff * weight_diff

    def move_delta(self, cut_delta: int, weight_diff: int, move_weight: int) -> float:
        """Cost change from moving a vertex of weight ``move_weight`` off side 0.

        ``weight_diff`` is ``w(side0) - w(side1)`` *before* the move and
        ``move_weight`` is signed: positive when the vertex leaves side 0
        (diff decreases by ``2 * move_weight``), negative when it leaves
        side 1.  ``cut_delta`` is the cut change of the move.
        """
        new_diff = weight_diff - 2 * move_weight
        return cut_delta + self.alpha * (new_diff * new_diff - weight_diff * weight_diff)
