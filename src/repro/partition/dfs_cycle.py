"""Exact bisection of maximum-degree-2 graphs (paths and cycles).

Paper, Section VI: "under the model Gbreg(2n, b, d) graphs of degree two
must consist only of a collection of chordless cycles.  As such the
optimal bisection is <= 2 for all settings of b ... one could just use a
depth first search algorithm to obtain a better approximation or one could
solve the problem exactly in time O(n^2) for these graphs."

This module is that exact solver.  A max-degree-2 graph is a disjoint
union of paths (including isolated vertices) and cycles.  If some subset
of whole components has total weight exactly half, the bisection width
is 0.  Otherwise one component must be split: splitting a path costs 1
cut edge and splitting a cycle costs 2, and a path can donate any prefix,
a cycle any arc — so the optimum is 0, 1, or 2 and is found by a
subset-sum sweep over component weights (O(n * #components), comfortably
inside the paper's O(n^2) bound).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..graphs.graph import Graph
from ..graphs.traversal import connected_components
from .bisection import Bisection

__all__ = ["bisect_paths_and_cycles"]

Vertex = Hashable


def _component_order(graph: Graph, component: list[Vertex]) -> tuple[list[Vertex], bool]:
    """Order a degree-<=2 component along its path/cycle; returns (order, is_cycle)."""
    degrees = {v: graph.degree(v) for v in component}
    endpoints = [v for v in component if degrees[v] <= 1]
    is_cycle = not endpoints
    start = component[0] if is_cycle else endpoints[0]

    order = [start]
    seen = {start}
    current = start
    while True:
        nxt = None
        for u in graph.neighbors(current):
            if u not in seen:
                nxt = u
                break
        if nxt is None:
            break
        order.append(nxt)
        seen.add(nxt)
        current = nxt
    return order, is_cycle


def _subset_with_sum(sizes: list[int], target: int) -> list[int] | None:
    """Indices of a subset of ``sizes`` summing to ``target`` (or None).

    Dynamic program over reachable sums, keeping one predecessor per sum
    for reconstruction.
    """
    if target == 0:
        return []
    # reachable[s] = (component index used to first reach s, previous sum)
    reachable: dict[int, tuple[int, int]] = {0: (-1, 0)}
    for idx, size in enumerate(sizes):
        updates = {}
        for s in reachable:
            t = s + size
            if t <= target and t not in reachable and t not in updates:
                updates[t] = (idx, s)
        reachable.update(updates)
        if target in reachable:
            break
    if target not in reachable:
        return None
    chosen = []
    s = target
    while s != 0:
        idx, prev = reachable[s]
        chosen.append(idx)
        s = prev
    return chosen


def bisect_paths_and_cycles(graph: Graph) -> Bisection:
    """Optimal bisection of a graph whose maximum degree is 2.

    Returns a balanced bisection of cut 0, 1, or 2 — provably minimum.
    Raises ``ValueError`` on vertices of degree 3+ or non-unit weights.
    """
    if not graph.is_uniform_vertex_weight():
        raise ValueError("bisect_paths_and_cycles requires unit vertex weights")
    for v in graph.vertices():
        if graph.degree(v) > 2:
            raise ValueError(f"vertex {v!r} has degree {graph.degree(v)} > 2")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices")
    half = n // 2

    components = connected_components(graph)
    ordered = [_component_order(graph, comp) for comp in components]
    sizes = [len(order) for order, _ in ordered]

    # Try cut 0: whole components summing to exactly half.
    chosen = _subset_with_sum(sizes, half)
    split_component = None
    if chosen is None:
        # One component must be split.  Prefer splitting a path (cut 1)
        # over a cycle (cut 2).  Withhold component i, pack the rest as
        # close to half as possible from below, and take the deficit as a
        # prefix/arc of component i.
        for want_cycle in (False, True):
            for i, (order, is_cycle) in enumerate(ordered):
                if is_cycle != want_cycle:
                    continue
                others = sizes[:i] + sizes[i + 1 :]
                for deficit in range(1, sizes[i]):
                    packed = _subset_with_sum(others, half - deficit)
                    if packed is not None:
                        # Map packed indices back past the withheld slot.
                        chosen = [j if j < i else j + 1 for j in packed]
                        split_component = (i, deficit)
                        break
                if split_component:
                    break
            if split_component:
                break
    if chosen is None and split_component is None:
        raise AssertionError("a degree-<=2 graph always admits a <=2-cut bisection")

    assignment = {v: 1 for v in graph.vertices()}
    for j in chosen:
        for v in ordered[j][0]:
            assignment[v] = 0
    if split_component is not None:
        i, deficit = split_component
        for v in ordered[i][0][:deficit]:
            assignment[v] = 0
    return Bisection(graph, assignment)
