"""Random initial bisections.

The paper's protocol (Section VI) starts every heuristic "from two
different randomly generated initial bisections" and reports the best of
the two.  :func:`random_bisection` is that starting-point generator; the
best-of-two logic lives in :mod:`repro.bench.runner`.
"""

from __future__ import annotations

import random

from ..graphs.graph import Graph
from ..rng import resolve_rng
from .bisection import Bisection, default_tolerance, rebalance

__all__ = ["random_bisection", "random_assignment"]


def random_assignment(
    graph: Graph,
    rng: random.Random | int | None = None,
    tolerance: int | None = None,
) -> dict:
    """A uniformly random balanced vertex -> side dict.

    For plain graphs: shuffle and split in half (exactly balanced, every
    balanced bisection equally likely).  For weighted (contracted) graphs:
    shuffle, then assign heaviest-first to the lighter side (randomized
    LPT, which lands within one lightest-vertex weight of perfect), then
    repair with :func:`~repro.partition.bisection.rebalance` toward the
    requested tolerance (default: the minimum achievable imbalance).  If
    single moves cannot reach the tolerance — possible with very heavy
    supervertices after deep coarsening — the best reachable split is
    returned; weight-aware refiners (FM) finish the repair.
    """
    rng = resolve_rng(rng)
    vertices = list(graph.vertices())
    rng.shuffle(vertices)

    if graph.is_uniform_vertex_weight():
        half = len(vertices) // 2
        assignment = {v: 0 for v in vertices[: half + len(vertices) % 2]}
        assignment.update({v: 1 for v in vertices[half + len(vertices) % 2 :]})
        # For odd |V| the extra vertex landed on side 0 arbitrarily; that is
        # within the default tolerance of 1.
        return assignment

    # Heaviest-first keeps the greedy split tight; the shuffle above makes
    # the order random among equal weights.
    vertices.sort(key=graph.vertex_weight, reverse=True)
    assignment: dict = {}
    w0 = w1 = 0
    for v in vertices:
        wv = graph.vertex_weight(v)
        if w0 <= w1:
            assignment[v] = 0
            w0 += wv
        else:
            assignment[v] = 1
            w1 += wv
    if tolerance is None:
        tolerance = default_tolerance(graph)
    if abs(w0 - w1) > tolerance:
        try:
            rebalance(graph, assignment, tolerance, rng)
        except ValueError:
            pass  # tolerance unreachable by single moves; refiners repair
    return assignment


def random_bisection(
    graph: Graph,
    rng: random.Random | int | None = None,
    tolerance: int | None = None,
) -> Bisection:
    """A uniformly random balanced :class:`Bisection` of ``graph``."""
    return Bisection(graph, random_assignment(graph, rng, tolerance))
