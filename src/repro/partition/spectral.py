"""Spectral bisection baseline (Fiedler vector split).

Not in the 1989 paper, but the classical *global* comparator for local
heuristics: sort vertices by the eigenvector of the second-smallest
Laplacian eigenvalue and split at the weighted median.  Requires numpy
(dense solve) with scipy used for large sparse graphs when available;
:func:`spectral_bisection` raises ``ImportError`` otherwise, and all other
modules work without numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.graph import Graph
from .bisection import Bisection, default_tolerance, rebalance

__all__ = ["spectral_bisection", "SpectralResult"]

_DENSE_LIMIT = 600  # above this many vertices, use sparse eigsh


@dataclass(frozen=True)
class SpectralResult:
    """Outcome of spectral bisection: the split plus the Fiedler value."""

    bisection: Bisection
    fiedler_value: float

    @property
    def cut(self) -> int:
        return self.bisection.cut


def _fiedler_vector(graph: Graph, order: list) -> tuple[float, "object"]:
    import numpy as np

    n = len(order)
    index = {v: i for i, v in enumerate(order)}

    if n > _DENSE_LIMIT:
        try:
            from scipy.sparse import lil_matrix
            from scipy.sparse.linalg import eigsh

            lap = lil_matrix((n, n))
            for u, v, w in graph.edges():
                i, j = index[u], index[v]
                lap[i, j] -= w
                lap[j, i] -= w
                lap[i, i] += w
                lap[j, j] += w
            # Smallest-magnitude eigenpairs via shift-invert around 0.
            vals, vecs = eigsh(lap.tocsc(), k=2, sigma=-1e-8, which="LM")
            second = int(np.argsort(vals)[1])
            return float(vals[second]), vecs[:, second]
        except ImportError:
            pass  # fall through to dense numpy

    lap = np.zeros((n, n))
    for u, v, w in graph.edges():
        i, j = index[u], index[v]
        lap[i, j] -= w
        lap[j, i] -= w
        lap[i, i] += w
        lap[j, j] += w
    vals, vecs = np.linalg.eigh(lap)
    return float(vals[1]), vecs[:, 1]


def spectral_bisection(graph: Graph, balance_tolerance: int | None = None) -> SpectralResult:
    """Bisect ``graph`` by splitting the Fiedler vector at its weighted median.

    Deterministic (no RNG).  The split is balanced by vertex weight: the
    sorted prefix closest to half the total weight goes to side 0, then
    :func:`~repro.partition.bisection.rebalance` tightens to tolerance.
    """
    if graph.num_vertices < 2:
        raise ValueError("need at least two vertices")
    order = list(graph.vertices())
    fiedler_value, vector = _fiedler_vector(graph, order)

    ranked = sorted(range(len(order)), key=lambda i: float(vector[i]))
    total = graph.total_vertex_weight
    assignment = {}
    acc = 0
    for i in ranked:
        v = order[i]
        side = 0 if 2 * acc < total else 1
        assignment[v] = side
        acc += graph.vertex_weight(v)

    tol = default_tolerance(graph) if balance_tolerance is None else balance_tolerance
    rebalance(graph, assignment, tol)
    return SpectralResult(bisection=Bisection(graph, assignment), fiedler_value=fiedler_value)
