"""K-way partitioning by recursive bisection.

The paper's application — VLSI placement — needs more than two regions:
placers carve the netlist into a grid of slots by *recursively* bisecting
it.  This module provides that layer over any 2-way bisector:

* ``k`` a power of two: plain halving;
* general ``k``: each split carves off ``ceil(k/2) : floor(k/2)`` shares,
  using FM's ``target_weights`` support for the unequal splits.

The well-known quality bound carries over from the bisection heuristic:
if each bisection is within a factor of the optimum cut at its level, the
k-way edge cut is within ``O(log k)`` of recursive-optimal.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from ..graphs.graph import Graph
from ..rng import resolve_rng, spawn
from .bisection import Bisection
from .fm import fiduccia_mattheyses
from .kl import kernighan_lin

__all__ = ["recursive_kway", "KWayPartition"]

Vertex = Hashable
Bisector = Callable[..., Any]


@dataclass(frozen=True)
class KWayPartition:
    """A k-way partition: ``parts[i]`` is the frozenset of part ``i``'s vertices."""

    graph: Graph
    parts: tuple[frozenset, ...]

    @property
    def k(self) -> int:
        return len(self.parts)

    @property
    def cut(self) -> int:
        """Total weight of edges whose endpoints lie in different parts."""
        part_of = self.part_map()
        return sum(
            w for u, v, w in self.graph.edges() if part_of[u] != part_of[v]
        )

    def part_map(self) -> dict[Vertex, int]:
        """``vertex -> part index`` dict."""
        mapping: dict[Vertex, int] = {}
        for i, part in enumerate(self.parts):
            for v in part:
                mapping[v] = i
        return mapping

    def part_weights(self) -> tuple[int, ...]:
        """Total vertex weight of each part."""
        return tuple(
            sum(self.graph.vertex_weight(v) for v in part) for part in self.parts
        )

    def max_imbalance_ratio(self) -> float:
        """``max part weight / ideal part weight`` (1.0 = perfectly even)."""
        weights = self.part_weights()
        ideal = self.graph.total_vertex_weight / self.k
        return max(weights) / ideal if ideal else 0.0

    def validate(self) -> None:
        """Check the parts exactly partition the vertex set."""
        seen: set[Vertex] = set()
        for part in self.parts:
            overlap = seen & part
            if overlap:
                raise AssertionError(f"vertex in two parts: {next(iter(overlap))!r}")
            seen |= part
        missing = set(self.graph.vertices()) - seen
        if missing:
            raise AssertionError(f"vertices in no part: {next(iter(missing))!r}")


def _split_targets(total: int, k: int) -> tuple[int, int, int, int]:
    """Shares and weights for splitting ``k`` parts of ``total`` weight.

    Returns ``(k0, k1, t0, t1)``: side 0 hosts ``k0 = ceil(k/2)`` parts
    and should carry ``t0 ~ total * k0 / k`` weight.
    """
    k0 = (k + 1) // 2
    k1 = k - k0
    t0 = round(total * k0 / k)
    return k0, k1, t0, total - t0


def recursive_kway(
    graph: Graph,
    k: int,
    rng: random.Random | int | None = None,
    bisector: Bisector | None = None,
) -> KWayPartition:
    """Partition ``graph`` into ``k`` parts of (nearly) equal vertex weight.

    ``bisector`` handles the even 50/50 splits (default: Kernighan-Lin);
    unequal splits always use FM with ``target_weights`` since KL's
    pair-swap neighborhood cannot produce them.  Parts are indexed in a
    stable left-to-right order of the recursion tree.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > graph.num_vertices:
        raise ValueError(f"cannot cut {graph.num_vertices} vertices into {k} parts")
    rng = resolve_rng(rng)
    bisector = bisector or kernighan_lin

    parts: list[frozenset] = []

    def split(vertices: list, parts_here: int, salt: int) -> None:
        if parts_here == 1:
            parts.append(frozenset(vertices))
            return
        sub = graph.subgraph(vertices)
        k0, k1, t0, t1 = _split_targets(sub.total_vertex_weight, parts_here)
        child = spawn(rng, salt)
        if k0 == k1:
            result = bisector(sub, rng=child)
        else:
            result = fiduccia_mattheyses(sub, rng=child, target_weights=(t0, t1))
        bisection: Bisection = result.bisection
        side0 = [v for v in vertices if bisection.side_of(v) == 0]
        side1 = [v for v in vertices if bisection.side_of(v) == 1]
        # Ensure the larger share goes with the larger target when FM
        # returned the sides in the opposite orientation.
        if k0 != k1:
            w0 = sum(graph.vertex_weight(v) for v in side0)
            w1 = sum(graph.vertex_weight(v) for v in side1)
            if (w0 - w1) * (t0 - t1) < 0:
                side0, side1 = side1, side0
        split(side0, k0, 2 * salt + 1)
        split(side1, k1, 2 * salt + 2)

    split(list(graph.vertices()), k, 0)
    partition = KWayPartition(graph=graph, parts=tuple(parts))
    partition.validate()
    return partition
