"""The Kernighan-Lin graph bisection heuristic (paper Fig. 2, [KL70]).

One *pass* (the paper's Figure 2):

1. compute every vertex's gain ``g_v`` — the cut reduction of moving ``v``
   across (edge weight to the other side minus edge weight to its own);
2. repeatedly pick the unlocked pair ``a in A, b in B`` maximizing
   ``g_ab = g_a + g_b - 2 w(a, b)``, lock it, and update neighbor gains as
   if the pair had been exchanged;
3. after all vertices are paired, find the prefix ``k`` of the pair
   sequence with the largest cumulative gain and actually exchange those
   ``k`` pairs.

Passes repeat until a pass yields no positive gain (or ``max_passes``).

Pair selection uses lazy max-heaps plus the bound ``g_ab <= g_a + g_b``:
candidates are scanned in decreasing ``g_a + g_b`` order and the scan
stops as soon as that upper bound cannot beat the best concrete pair.  On
bounded-degree graphs each selection touches O(1) candidates, making a
pass effectively ``O(|E| log |V|)`` instead of the textbook ``O(n^2)``.
Candidates examined but not chosen park in a sorted *pending* queue that
is merged with the heap on the next selection, instead of being re-pushed
(and later re-sifted) with an identical fresh tuple every round.

Weighted (contracted) graphs: to preserve exact balance, only pairs of
equal vertex weight are exchanged — each weight class gets its own pair
of heaps, and each step picks the best pair across classes.

Two implementations of the pass share this selection logic: the
label-keyed dict kernel below, and an integer-id kernel over the graph's
:class:`~repro.graphs.csr.CSRGraph` view with packed ``(gain, rank)``
integer heap keys.  The CSR kernel is chosen automatically (escape hatch:
``REPRO_NO_CSR=1``) and produces bit-identical results: ids follow
insertion order and heap ties break by label *rank*, which orders exactly
like the dict kernel's label comparisons.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from operator import mul

from ..graphs.csr import CSRGraph, csr_view
from ..graphs.graph import Graph
from ..kernels import kernel_backend
from ..kernels.gains import move_gains
from ..kernels.kl import kl_sequence_multi, kl_sequence_single
from ..obs import counter, span
from ..rng import resolve_rng
from .bisection import Bisection, cut_weight
from .random_init import random_assignment

__all__ = ["kernighan_lin", "kl_pass", "KLResult"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class KLResult:
    """Outcome of a Kernighan-Lin run.

    ``pass_gains[i]`` is the cut improvement applied by pass ``i``; the
    final (zero-gain) pass that triggers termination is not recorded.
    """

    bisection: Bisection
    initial_cut: int
    passes: int
    pass_gains: list[int] = field(default_factory=list)
    swaps: int = 0

    @property
    def cut(self) -> int:
        return self.bisection.cut

    def cut_trace(self) -> list[int]:
        """Cut after each applied pass: ``[initial, after pass 1, ...]``.

        The verification oracles check this trace is monotone non-increasing
        and that its last entry matches the recomputed final cut.
        """
        trace = [self.initial_cut]
        for gain in self.pass_gains:
            trace.append(trace[-1] - gain)
        return trace


# -- dict kernel -------------------------------------------------------------------


class _SelectState:
    """Per-weight-class selection state: a lazy max-heap per side, plus a
    sorted *pending* queue of already-popped, still-fresh candidates.

    ``next_entry`` yields entries in globally ascending ``(-gain, v)``
    order by merging the two: pending holds candidates a previous
    selection examined and did not choose, so returning them costs O(1)
    instead of a ``heappush``/``heappop`` round trip per selection round.
    """

    __slots__ = ("heaps", "pending", "stale", "candidates", "prune_hits")

    def __init__(self) -> None:
        self.heaps: tuple[list, list] = ([], [])
        self.pending: tuple[deque, deque] = (deque(), deque())
        self.stale = 0  # superseded heap entries discarded (obs only)
        self.candidates = 0  # entries examined across selections (obs only)
        self.prune_hits = 0  # selections settled by the two top pops (obs only)

    def push(self, side: int, gain: int, v) -> None:
        heappush(self.heaps[side], (-gain, v))

    def next_entry(self, side: int, gains: dict, locked: set):
        """The next unlocked, non-stale ``(-gain, v)`` entry on ``side`` (or None)."""
        heap = self.heaps[side]
        pend = self.pending[side]
        while True:
            if pend:
                entry = heappop(heap) if heap and heap[0] < pend[0] else pend.popleft()
            elif heap:
                entry = heappop(heap)
            else:
                return None
            neg_gain, v = entry
            if v not in locked and gains[v] == -neg_gain:
                return entry
            self.stale += 1

    def park(self, side: int, entries: list, chosen) -> None:
        """Return unchosen popped entries (ascending order) to the pending front."""
        self.pending[side].extendleft(
            entry for entry in reversed(entries) if entry[1] is not chosen
        )


def _select_pair(state: _SelectState, gains: dict, locked: set, graph: Graph):
    """Best unlocked pair (a on side 0, b on side 1) within one weight class.

    Returns ``(pair_gain, a, b)`` or ``None`` when the class cannot supply
    a pair.  Examined-but-unchosen candidates are parked back on the
    state's pending queues (gains unchanged, so the popped entries stay
    valid as-is — only stale entries ever leave the structure for good).
    """
    a_cands: list = []
    b_cands: list = []

    def extend(side: int, cands: list) -> bool:
        entry = state.next_entry(side, gains, locked)
        if entry is None:
            return False
        cands.append(entry)
        return True

    if not extend(0, a_cands) or not extend(1, b_cands):
        state.candidates += len(a_cands) + len(b_cands)
        state.park(0, a_cands, None)
        state.park(1, b_cands, None)
        return None

    best_gain = _NEG_INF
    best_a = best_b = None
    top_b_gain = -b_cands[0][0]

    i = 0
    while i < len(a_cands):
        a = a_cands[i][1]
        gain_a = -a_cands[i][0]
        if best_a is not None and gain_a + top_b_gain <= best_gain:
            break
        adj_a = graph.adjacency(a)
        j = 0
        while True:
            if j >= len(b_cands) and not extend(1, b_cands):
                break
            b = b_cands[j][1]
            upper = gain_a - b_cands[j][0]
            if best_a is not None and upper <= best_gain:
                break
            pair_gain = upper - 2 * adj_a.get(b, 0)
            if pair_gain > best_gain:
                best_gain, best_a, best_b = pair_gain, a, b
            j += 1
        i += 1
        if i == len(a_cands):
            # Pull the next A candidate only if it could still matter.
            if not extend(0, a_cands):
                break
            if -a_cands[-1][0] + top_b_gain <= best_gain:
                break

    state.candidates += len(a_cands) + len(b_cands)
    if len(a_cands) + len(b_cands) == 2:
        state.prune_hits += 1
    state.park(0, a_cands, best_a)
    state.park(1, b_cands, best_b)
    if best_a is None:
        return None
    return best_gain, best_a, best_b


def _kl_pass_dict(
    graph: Graph, assignment: dict, stats: dict | None = None
) -> tuple[int, int]:
    """One KL pass over the dict-of-dicts adjacency (reference kernel)."""
    gains: dict = {}
    for v in graph.vertices():
        side_v = assignment[v]
        g = 0
        for u, w in graph.neighbor_items(v):
            g += w if assignment[u] != side_v else -w
        gains[v] = g

    weight_of = graph.vertex_weight
    states: dict[int, _SelectState] = {}
    for v in graph.vertices():
        state = states.setdefault(weight_of(v), _SelectState())
        state.push(assignment[v], gains[v], v)

    locked: set = set()
    sequence: list[tuple] = []  # (a, b, pair_gain)

    while True:
        best = None  # (gain, a, b, state)
        for state in states.values():
            selected = _select_pair(state, gains, locked, graph)
            if selected is None:
                continue
            gain, a, b = selected
            if best is None or gain > best[0]:
                if best is not None:
                    # Un-choose the previous class's pair: push its pair back.
                    _, pa, pb, pstate = best
                    pstate.push(assignment[pa], gains[pa], pa)
                    pstate.push(assignment[pb], gains[pb], pb)
                best = (gain, a, b, state)
            else:
                state.push(assignment[a], gains[a], a)
                state.push(assignment[b], gains[b], b)
        if best is None:
            break

        gain, a, b, _state = best
        locked.add(a)
        locked.add(b)
        sequence.append((a, b, gain))

        # Update gains as if (a, b) were exchanged (paper Fig. 2 lines 6-8).
        for moved in (a, b):
            side_moved = assignment[moved]
            for u, w in graph.neighbor_items(moved):
                if u in locked:
                    continue
                # "moved" leaves u's side or arrives on it.
                gains[u] += 2 * w if assignment[u] == side_moved else -2 * w
                states[weight_of(u)].push(assignment[u], gains[u], u)

    # Paper Fig. 2 line 9: best prefix of the pair sequence.
    best_total = 0
    best_k = 0
    running = 0
    for k, (_, _, gain) in enumerate(sequence, start=1):
        running += gain
        if running > best_total:
            best_total = running
            best_k = k
    for a, b, _ in sequence[:best_k]:
        assignment[a], assignment[b] = assignment[b], assignment[a]
    if stats is not None:
        _accumulate_pass_stats(
            stats,
            selections=len(sequence),
            stale=sum(s.stale for s in states.values()),
            candidates=sum(s.candidates for s in states.values()),
            prune_hits=sum(s.prune_hits for s in states.values()),
        )
    return best_total, best_k


def _accumulate_pass_stats(
    stats: dict, *, selections: int, stale: int, candidates: int, prune_hits: int
) -> None:
    stats["selections"] = stats.get("selections", 0) + selections
    stats["stale_pops"] = stats.get("stale_pops", 0) + stale
    stats["candidates"] = stats.get("candidates", 0) + candidates
    stats["prune_hits"] = stats.get("prune_hits", 0) + prune_hits


# -- CSR kernel --------------------------------------------------------------------
#
# The packed-key selection kernels live in :mod:`repro.kernels.kl`; this
# module owns the pass framing (gain init, best-prefix application) and
# the backend dispatch.


def _kl_pass_csr(
    csr: CSRGraph, assignment: dict, stats: dict | None, backend: str
) -> tuple[int, int]:
    """One KL pass over the CSR arrays; decision-identical to ``_kl_pass_dict``."""
    sides = csr.sides_list(assignment)
    gains = move_gains(csr, sides, backend)
    if csr.unit_vertex_weights or len(set(csr.vertex_weight_list())) == 1:
        sequence = kl_sequence_single(csr, sides, gains, stats)
    else:
        sequence = kl_sequence_multi(csr, sides, gains, stats)

    best_total = 0
    best_k = 0
    running = 0
    for k, (_, _, gain) in enumerate(sequence, start=1):
        running += gain
        if running > best_total:
            best_total = running
            best_k = k
    labels = csr.labels
    for a, b, _ in sequence[:best_k]:
        la, lb = labels[a], labels[b]
        assignment[la], assignment[lb] = assignment[lb], assignment[la]
    return best_total, best_k


def kl_pass(
    graph: Graph, assignment: dict, stats: dict | None = None
) -> tuple[int, int]:
    """Run one Kernighan-Lin pass, mutating ``assignment``.

    Returns ``(applied_gain, swaps_applied)``: the cut reduction achieved
    by exchanging the best prefix of the pair sequence, and the number of
    pairs exchanged (0 when the pass found no improvement).

    ``stats``, when given, accumulates selection-machinery counts
    (``selections`` / ``stale_pops`` / ``candidates`` / ``prune_hits``)
    for the observability layer; it never influences the pass.

    Dispatches to the CSR kernel when enabled (see module docstring);
    both kernels make identical decisions, so the choice never changes
    the result.
    """
    backend = kernel_backend()
    if backend != "dict":
        csr = csr_view(graph)
        if csr.rank is not None:
            return _kl_pass_csr(csr, assignment, stats, backend)
    return _kl_pass_dict(graph, assignment, stats)


def kernighan_lin(
    graph: Graph,
    init: Bisection | None = None,
    rng: random.Random | int | None = None,
    max_passes: int | None = None,
) -> KLResult:
    """Bisect ``graph`` with Kernighan-Lin.

    ``init`` supplies the starting bisection (the compaction pipeline uses
    this to seed KL with the projected coarse solution); otherwise a random
    balanced bisection drawn from ``rng`` is used.  Passes run until one
    yields no improvement, or ``max_passes``.
    """
    if graph.num_vertices == 0:
        raise ValueError("cannot bisect the empty graph")
    if init is not None:
        if init.graph is not graph and init.graph != graph:
            raise ValueError("init bisection belongs to a different graph")
        assignment = init.assignment()
    else:
        assignment = random_assignment(graph, resolve_rng(rng))

    if kernel_backend() != "dict":
        csr_view(graph)  # compile once up front; cut_weight reuses it

    initial_cut = cut_weight(graph, assignment)
    cut = initial_cut
    pass_gains: list[int] = []
    swaps = 0
    passes = 0
    stats: dict[str, int] = {}
    with span("kl.run", vertices=graph.num_vertices):
        while max_passes is None or passes < max_passes:
            with span("kl.pass"):
                gain, applied = kl_pass(graph, assignment, stats)
            passes += 1
            if applied == 0:
                break
            cut -= gain
            swaps += applied
            pass_gains.append(gain)

    counter("kl_runs_total").inc()
    counter("kl_passes_total").inc(passes)
    counter("kl_swaps_total").inc(swaps)
    counter("kl_selections_total").inc(stats.get("selections", 0))
    counter("kl_stale_pops_total").inc(stats.get("stale_pops", 0))
    counter("kl_candidates_total").inc(stats.get("candidates", 0))
    counter("kl_prune_hits_total").inc(stats.get("prune_hits", 0))

    result = Bisection(graph, assignment)
    assert result.cut == cut, "incremental cut diverged from recomputation"
    return KLResult(
        bisection=result,
        initial_cut=initial_cut,
        passes=passes,
        pass_gains=pass_gains,
        swaps=swaps,
    )
