"""The Kernighan-Lin graph bisection heuristic (paper Fig. 2, [KL70]).

One *pass* (the paper's Figure 2):

1. compute every vertex's gain ``g_v`` — the cut reduction of moving ``v``
   across (edge weight to the other side minus edge weight to its own);
2. repeatedly pick the unlocked pair ``a in A, b in B`` maximizing
   ``g_ab = g_a + g_b - 2 w(a, b)``, lock it, and update neighbor gains as
   if the pair had been exchanged;
3. after all vertices are paired, find the prefix ``k`` of the pair
   sequence with the largest cumulative gain and actually exchange those
   ``k`` pairs.

Passes repeat until a pass yields no positive gain (or ``max_passes``).

Pair selection uses lazy max-heaps plus the bound ``g_ab <= g_a + g_b``:
candidates are scanned in decreasing ``g_a + g_b`` order and the scan
stops as soon as that upper bound cannot beat the best concrete pair.  On
bounded-degree graphs each selection touches O(1) candidates, making a
pass effectively ``O(|E| log |V|)`` instead of the textbook ``O(n^2)``.

Weighted (contracted) graphs: to preserve exact balance, only pairs of
equal vertex weight are exchanged — each weight class gets its own pair
of heaps, and each step picks the best pair across classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop, heappush

from ..graphs.graph import Graph
from ..rng import resolve_rng
from .bisection import Bisection, cut_weight
from .random_init import random_assignment

__all__ = ["kernighan_lin", "kl_pass", "KLResult"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class KLResult:
    """Outcome of a Kernighan-Lin run.

    ``pass_gains[i]`` is the cut improvement applied by pass ``i``; the
    final (zero-gain) pass that triggers termination is not recorded.
    """

    bisection: Bisection
    initial_cut: int
    passes: int
    pass_gains: list[int] = field(default_factory=list)
    swaps: int = 0

    @property
    def cut(self) -> int:
        return self.bisection.cut

    def cut_trace(self) -> list[int]:
        """Cut after each applied pass: ``[initial, after pass 1, ...]``.

        The verification oracles check this trace is monotone non-increasing
        and that its last entry matches the recomputed final cut.
        """
        trace = [self.initial_cut]
        for gain in self.pass_gains:
            trace.append(trace[-1] - gain)
        return trace


class _SelectState:
    """Per-weight-class selection state: one lazy max-heap per side."""

    __slots__ = ("heaps",)

    def __init__(self) -> None:
        self.heaps: tuple[list, list] = ([], [])

    def push(self, side: int, gain: int, v) -> None:
        heappush(self.heaps[side], (-gain, v))

    def pop_valid(self, side: int, gains: dict, locked: set):
        """Pop the highest-gain unlocked, non-stale vertex on ``side`` (or None)."""
        heap = self.heaps[side]
        while heap:
            neg_gain, v = heappop(heap)
            if v not in locked and gains[v] == -neg_gain:
                return v
        return None


def _select_pair(state: _SelectState, gains: dict, locked: set, graph: Graph):
    """Best unlocked pair (a on side 0, b on side 1) within one weight class.

    Returns ``(pair_gain, a, b, leftovers)`` where ``leftovers`` are popped
    candidates that must be pushed back, or ``None`` if a side is exhausted.
    """
    a_cands: list = []
    b_cands: list = []

    def extend(side: int, cands: list) -> bool:
        v = state.pop_valid(side, gains, locked)
        if v is None:
            return False
        cands.append(v)
        return True

    if not extend(0, a_cands) or not extend(1, b_cands):
        leftovers = a_cands + b_cands
        return None if not leftovers else (None, None, None, leftovers)

    best_gain = _NEG_INF
    best_a = best_b = None
    top_b_gain = gains[b_cands[0]]

    i = 0
    while i < len(a_cands):
        a = a_cands[i]
        if best_a is not None and gains[a] + top_b_gain <= best_gain:
            break
        adj_a = graph.adjacency(a)
        j = 0
        while True:
            if j >= len(b_cands) and not extend(1, b_cands):
                break
            b = b_cands[j]
            upper = gains[a] + gains[b]
            if best_a is not None and upper <= best_gain:
                break
            pair_gain = upper - 2 * adj_a.get(b, 0)
            if pair_gain > best_gain:
                best_gain, best_a, best_b = pair_gain, a, b
            j += 1
        i += 1
        if i == len(a_cands):
            # Pull the next A candidate only if it could still matter.
            if not extend(0, a_cands):
                break
            if gains[a_cands[-1]] + top_b_gain <= best_gain:
                break

    leftovers = [v for v in a_cands + b_cands if v is not best_a and v is not best_b]
    return best_gain, best_a, best_b, leftovers


def kl_pass(graph: Graph, assignment: dict) -> tuple[int, int]:
    """Run one Kernighan-Lin pass, mutating ``assignment``.

    Returns ``(applied_gain, swaps_applied)``: the cut reduction achieved
    by exchanging the best prefix of the pair sequence, and the number of
    pairs exchanged (0 when the pass found no improvement).
    """
    gains: dict = {}
    for v in graph.vertices():
        side_v = assignment[v]
        g = 0
        for u, w in graph.neighbor_items(v):
            g += w if assignment[u] != side_v else -w
        gains[v] = g

    weight_of = graph.vertex_weight
    states: dict[int, _SelectState] = {}
    for v in graph.vertices():
        state = states.setdefault(weight_of(v), _SelectState())
        state.push(assignment[v], gains[v], v)

    locked: set = set()
    sequence: list[tuple] = []  # (a, b, pair_gain)

    while True:
        best = None  # (gain, a, b, state)
        for state in states.values():
            selected = _select_pair(state, gains, locked, graph)
            if selected is None:
                continue
            gain, a, b, leftovers = selected
            for v in leftovers:
                state.push(assignment[v], gains[v], v)
            if a is None:
                continue
            if best is None or gain > best[0]:
                if best is not None:
                    # Un-choose the previous class's pair: push its pair back.
                    _, pa, pb, pstate = best
                    pstate.push(assignment[pa], gains[pa], pa)
                    pstate.push(assignment[pb], gains[pb], pb)
                best = (gain, a, b, state)
            else:
                state.push(assignment[a], gains[a], a)
                state.push(assignment[b], gains[b], b)
        if best is None:
            break

        gain, a, b, _state = best
        locked.add(a)
        locked.add(b)
        sequence.append((a, b, gain))

        # Update gains as if (a, b) were exchanged (paper Fig. 2 lines 6-8).
        for moved in (a, b):
            side_moved = assignment[moved]
            for u, w in graph.neighbor_items(moved):
                if u in locked:
                    continue
                # "moved" leaves u's side or arrives on it.
                gains[u] += 2 * w if assignment[u] == side_moved else -2 * w
                states[weight_of(u)].push(assignment[u], gains[u], u)

    # Paper Fig. 2 line 9: best prefix of the pair sequence.
    best_total = 0
    best_k = 0
    running = 0
    for k, (_, _, gain) in enumerate(sequence, start=1):
        running += gain
        if running > best_total:
            best_total = running
            best_k = k
    for a, b, _ in sequence[:best_k]:
        assignment[a], assignment[b] = assignment[b], assignment[a]
    return best_total, best_k


def kernighan_lin(
    graph: Graph,
    init: Bisection | None = None,
    rng: random.Random | int | None = None,
    max_passes: int | None = None,
) -> KLResult:
    """Bisect ``graph`` with Kernighan-Lin.

    ``init`` supplies the starting bisection (the compaction pipeline uses
    this to seed KL with the projected coarse solution); otherwise a random
    balanced bisection drawn from ``rng`` is used.  Passes run until one
    yields no improvement, or ``max_passes``.
    """
    if graph.num_vertices == 0:
        raise ValueError("cannot bisect the empty graph")
    if init is not None:
        if init.graph is not graph and init.graph != graph:
            raise ValueError("init bisection belongs to a different graph")
        assignment = init.assignment()
    else:
        assignment = random_assignment(graph, resolve_rng(rng))

    initial_cut = cut_weight(graph, assignment)
    cut = initial_cut
    pass_gains: list[int] = []
    swaps = 0
    passes = 0
    while max_passes is None or passes < max_passes:
        gain, applied = kl_pass(graph, assignment)
        passes += 1
        if applied == 0:
            break
        cut -= gain
        swaps += applied
        pass_gains.append(gain)

    result = Bisection(graph, assignment)
    assert result.cut == cut, "incremental cut diverged from recomputation"
    return KLResult(
        bisection=result,
        initial_cut=initial_cut,
        passes=passes,
        pass_gains=pass_gains,
        swaps=swaps,
    )
