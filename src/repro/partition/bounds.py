"""Lower bounds on the bisection width.

Heuristics give upper bounds; these give lower bounds, so together they
bracket the true width.  Three classical bounds, cheapest first:

* **connectivity**: the global minimum cut (Stoer-Wagner,
  :mod:`repro.partition.mincut`) never exceeds the bisection width;
* **spectral**: for a graph on ``N`` vertices with Laplacian eigenvalue
  ``lambda_2``, every bisection cuts at least ``lambda_2 * N / 4`` edges
  (Fiedler's bound) — requires numpy, silently skipped without it;
* **trivial**: 0, or 1 for connected graphs.

``certify`` combines them with a heuristic's cut to report the optimality
gap — e.g. a `Gbreg` bisection at the planted width whose spectral bound
is close certifies near-optimality without exhaustive search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from .mincut import stoer_wagner

__all__ = ["bisection_lower_bound", "BisectionBounds", "certify"]


@dataclass(frozen=True)
class BisectionBounds:
    """All computed lower bounds plus their maximum."""

    trivial: int
    connectivity: int
    spectral: float | None

    @property
    def best(self) -> float:
        candidates: list[float] = [self.trivial, self.connectivity]
        if self.spectral is not None:
            candidates.append(self.spectral)
        return max(candidates)


def bisection_lower_bound(graph: Graph, use_spectral: bool = True) -> BisectionBounds:
    """Compute all available lower bounds on ``graph``'s bisection width."""
    if graph.num_vertices < 2:
        raise ValueError("need at least two vertices")

    trivial = 1 if is_connected(graph) and graph.num_vertices >= 2 else 0
    connectivity = stoer_wagner(graph).weight

    spectral = None
    if use_spectral:
        try:
            from .spectral import _fiedler_vector

            fiedler_value, _ = _fiedler_vector(graph, list(graph.vertices()))
            spectral = max(fiedler_value, 0.0) * graph.num_vertices / 4.0
        except ImportError:
            spectral = None

    return BisectionBounds(trivial=trivial, connectivity=connectivity, spectral=spectral)


def certify(graph: Graph, found_cut: int, use_spectral: bool = True) -> dict:
    """Bracket a heuristic cut between the best lower bound and itself.

    Returns a dict with ``lower``, ``upper`` (= found_cut) and ``gap_ratio``
    (``upper / max(lower, 1)``); a ratio of 1.0 proves optimality.
    """
    import math

    bounds = bisection_lower_bound(graph, use_spectral)
    lower = bounds.best
    # The width is an integer, so any fractional bound rounds up.
    integer_lower = math.ceil(lower - 1e-9)
    return {
        "lower": lower,
        "upper": found_cut,
        "gap_ratio": found_cut / max(lower, 1.0),
        "optimal": found_cut <= integer_lower,
        "bounds": bounds,
    }
