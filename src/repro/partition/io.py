"""Partition persistence: save/load bisections and k-way partitions.

Simple line format, one ``<vertex> <part>`` pair per line with a
``# repro partition k=<k>`` header — enough to hand results between the
CLI, the certifier, and downstream tools.  Vertex labels round-trip as
ints where possible (matching the edge-list convention in
:mod:`repro.graphs.io`).
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

from ..graphs.graph import Graph
from .bisection import Bisection
from .kway import KWayPartition

__all__ = [
    "write_partition",
    "read_partition",
    "read_bisection",
    "partition_to_string",
    "partition_from_string",
]


def _open_for(target, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def _parse_label(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def write_partition(
    partition: Bisection | KWayPartition, target: str | Path | TextIO
) -> None:
    """Write a bisection or k-way partition."""
    if isinstance(partition, Bisection):
        k = 2
        mapping = partition.assignment()
    elif isinstance(partition, KWayPartition):
        k = partition.k
        mapping = partition.part_map()
    else:
        raise TypeError(f"cannot serialize {type(partition).__name__}")
    stream, owned = _open_for(target, "w")
    try:
        stream.write(f"# repro partition k={k}\n")
        for v, part in mapping.items():
            stream.write(f"{v} {part}\n")
    finally:
        if owned:
            stream.close()


def read_partition(graph: Graph, source: str | Path | TextIO) -> KWayPartition:
    """Read a partition of ``graph``; validates coverage and part indices."""
    stream, owned = _open_for(source, "r")
    try:
        k = None
        mapping: dict = {}
        for line in stream:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if parts[:2] == ["repro", "partition"] and parts[2].startswith("k="):
                    k = int(parts[2][2:])
                continue
            tokens = line.split()
            if len(tokens) != 2:
                raise ValueError(f"malformed partition line: {line!r}")
            mapping[_parse_label(tokens[0])] = int(tokens[1])
    finally:
        if owned:
            stream.close()

    if k is None:
        raise ValueError("missing '# repro partition k=...' header")
    missing = [v for v in graph.vertices() if v not in mapping]
    if missing:
        raise ValueError(f"partition missing {len(missing)} vertices, e.g. {missing[0]!r}")
    extra = [v for v in mapping if v not in graph]
    if extra:
        raise ValueError(f"partition names unknown vertex {extra[0]!r}")
    if any(not 0 <= p < k for p in mapping.values()):
        raise ValueError(f"part index out of range for k={k}")

    parts = [set() for _ in range(k)]
    for v in graph.vertices():
        parts[mapping[v]].add(v)
    partition = KWayPartition(graph, tuple(frozenset(p) for p in parts))
    partition.validate()
    return partition


def read_bisection(graph: Graph, source: str | Path | TextIO) -> Bisection:
    """Read a 2-way partition file as a :class:`Bisection`."""
    partition = read_partition(graph, source)
    if partition.k != 2:
        raise ValueError(f"expected a bisection, file has k={partition.k}")
    return Bisection.from_sides(graph, partition.parts[0])


def partition_to_string(partition: Bisection | KWayPartition) -> str:
    buf = _io.StringIO()
    write_partition(partition, buf)
    return buf.getvalue()


def partition_from_string(graph: Graph, text: str) -> KWayPartition:
    return read_partition(graph, _io.StringIO(text))
