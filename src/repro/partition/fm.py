"""Fiduccia-Mattheyses refinement — the single-move variant of Kernighan-Lin.

FM is "the most widely used" family of KL variations the paper alludes to
(Section III) and the standard refinement engine of multilevel
partitioners, which is why the multilevel extension
(:mod:`repro.core.multilevel`) uses it: unlike the pair-swap KL in
:mod:`repro.partition.kl`, FM moves *single* vertices, so it refines
contracted graphs with mixed vertex weights without needing equal-weight
pairs.

A pass moves every vertex exactly once (best-gain first, subject to a
loose balance window), then rolls back to the best prefix that is
*strictly* balanced.  The loose window — wide enough for the heaviest
single vertex to cross — is what lets the search escape the
balance-preserving-swap subspace; strict balance is restored by the prefix
choice.  If the pass started out of balance (which happens when a
coarse-level solution is projected onto a finer graph with a smaller
achievable imbalance), the prefix minimizing imbalance is taken instead,
so FM doubles as a balance repairer.

Beyond 50/50 splits, FM accepts ``target_weights``: the pass then treats
"balance" as *deviation from the target split*, which is what k-way
recursive bisection (:mod:`repro.partition.kway`) needs to carve a graph
into unequal shares (e.g. 3:2 when splitting five parts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop, heappush

from ..graphs.csr import csr_view
from ..graphs.graph import Graph
from ..kernels import kernel_backend
from ..kernels.fm import fm_pass_csr
from ..obs import counter, span
from ..rng import resolve_rng
from .bisection import (
    Bisection,
    cut_weight,
    default_tolerance,
    minimum_achievable_deviation,
    side_weights,
)
from .random_init import random_assignment

__all__ = ["fiduccia_mattheyses", "FMResult"]


@dataclass(frozen=True)
class FMResult:
    """Outcome of an FM run (same shape as ``KLResult``)."""

    bisection: Bisection
    initial_cut: int
    passes: int
    pass_gains: list[int] = field(default_factory=list)
    moves: int = 0

    @property
    def cut(self) -> int:
        return self.bisection.cut

    def cut_trace(self) -> list[int]:
        """Cut after each applied pass: ``[initial, after pass 1, ...]``.

        Monotone non-increasing whenever the run *started* balanced (a
        balance-repair pass may trade cut for balance); the verification
        oracles rely on this.
        """
        trace = [self.initial_cut]
        for gain in self.pass_gains:
            trace.append(trace[-1] - gain)
        return trace


def _fm_pass_dict(
    graph: Graph,
    assignment: dict,
    strict_tol: int,
    loose_tol: int,
    target_diff: int = 0,
    stats: dict | None = None,
) -> tuple[int, int]:
    """One FM pass over the dict adjacency (reference kernel)."""
    gains: dict = {}
    for v in graph.vertices():
        side_v = assignment[v]
        gains[v] = sum(
            w if assignment[u] != side_v else -w for u, w in graph.neighbor_items(v)
        )

    heaps: tuple[list, list] = ([], [])
    for v in graph.vertices():
        heappush(heaps[assignment[v]], (-gains[v], v))

    w0, w1 = side_weights(graph, assignment)
    diff = w0 - w1
    locked: set = set()
    sequence: list = []  # moved vertices in order
    running_gain = 0

    def deviation(d: int) -> int:
        return abs(d - target_diff)

    start_balanced = deviation(diff) <= strict_tol
    best_balanced_gain = 0 if start_balanced else None
    best_balanced_k = 0
    best_deviation = deviation(diff)
    best_deviation_k = 0
    best_deviation_gain = 0
    stale = 0  # obs only: superseded/locked entries discarded
    stashed = 0  # obs only: balance-illegal entries stashed and restored

    def next_allowed(side: int):
        """Pop the best unlocked, fresh, balance-legal vertex on ``side``.

        Stale or illegal entries are discarded; an entry that is merely
        illegal *now* was pushed again on every gain update, and vertices
        never become illegal-forever while unlocked, because the loose
        window always admits moves off the heavier side.
        """
        nonlocal stale, stashed
        heap = heaps[side]
        stash = []
        found = None
        while heap:
            neg_gain, v = heappop(heap)
            if v in locked or assignment[v] != side or gains[v] != -neg_gain:
                stale += 1
                continue
            wv = graph.vertex_weight(v)
            new_diff = diff - 2 * wv if side == 0 else diff + 2 * wv
            if deviation(new_diff) <= loose_tol or deviation(new_diff) < deviation(diff):
                found = (neg_gain, v)
                break
            stash.append((neg_gain, v))
        stashed += len(stash)
        for item in stash:
            heappush(heap, item)
        return found

    num_vertices = graph.num_vertices
    while len(sequence) < num_vertices:
        cand0 = next_allowed(0)
        cand1 = next_allowed(1)
        if cand0 is None and cand1 is None:
            break
        if cand1 is None or (cand0 is not None and cand0[0] <= cand1[0]):
            chosen, other = cand0, cand1
        else:
            chosen, other = cand1, cand0
        if other is not None:
            heappush(heaps[assignment[other[1]]], other)

        _, v = chosen
        side_v = assignment[v]
        gain_v = gains[v]
        wv = graph.vertex_weight(v)
        locked.add(v)
        assignment[v] = 1 - side_v
        diff = diff - 2 * wv if side_v == 0 else diff + 2 * wv
        running_gain += gain_v
        sequence.append(v)

        for u, w in graph.neighbor_items(v):
            if u in locked:
                continue
            # v left u's side (edge now cut) or joined it (edge now internal).
            gains[u] += 2 * w if assignment[u] == side_v else -2 * w
            heappush(heaps[assignment[u]], (-gains[u], u))
        gains[v] = -gain_v

        k = len(sequence)
        dev = deviation(diff)
        if dev <= strict_tol:
            if best_balanced_gain is None or running_gain > best_balanced_gain:
                best_balanced_gain = running_gain
                best_balanced_k = k
        if dev < best_deviation or (dev == best_deviation and running_gain > best_deviation_gain):
            best_deviation = dev
            best_deviation_k = k
            best_deviation_gain = running_gain

    if best_balanced_gain is not None:
        keep, applied = best_balanced_k, best_balanced_gain
    else:
        # No strictly balanced prefix reachable; take the closest-to-target one.
        keep, applied = best_deviation_k, best_deviation_gain
    for v in reversed(sequence[keep:]):
        assignment[v] = 1 - assignment[v]
    if stats is not None:
        _accumulate_pass_stats(
            stats, considered=len(sequence), stale=stale, stashed=stashed
        )
    return applied, keep


def _accumulate_pass_stats(
    stats: dict, *, considered: int, stale: int, stashed: int
) -> None:
    stats["moves_considered"] = stats.get("moves_considered", 0) + considered
    stats["stale_pops"] = stats.get("stale_pops", 0) + stale
    stats["stash_restores"] = stats.get("stash_restores", 0) + stashed


def _fm_pass(
    graph: Graph,
    assignment: dict,
    strict_tol: int,
    loose_tol: int,
    target_diff: int = 0,
    stats: dict | None = None,
) -> tuple[int, int]:
    """One FM pass; mutates ``assignment``.  Returns ``(applied_gain, moves_kept)``.

    "Balance" throughout is the deviation ``|w0 - w1 - target_diff|``;
    ``target_diff = 0`` is the ordinary bisection case.  ``applied_gain``
    is relative to the cut at pass entry and may be negative when the pass
    was used to repair balance.  Dispatches to the CSR bucket-list kernel
    when enabled; both kernels make identical decisions.
    """
    backend = kernel_backend()
    if backend != "dict":
        csr = csr_view(graph)
        if csr.rank is not None:
            return fm_pass_csr(
                csr, assignment, strict_tol, loose_tol, target_diff, stats, backend
            )
    return _fm_pass_dict(graph, assignment, strict_tol, loose_tol, target_diff, stats)


def fiduccia_mattheyses(
    graph: Graph,
    init: Bisection | None = None,
    rng: random.Random | int | None = None,
    max_passes: int | None = None,
    balance_tolerance: int | None = None,
    target_weights: tuple[int, int] | None = None,
) -> FMResult:
    """Bisect (or refine) ``graph`` with Fiduccia-Mattheyses passes.

    ``balance_tolerance`` is the *strict* tolerance of the returned
    bisection; the internal wander window additionally admits one
    heaviest-vertex move past it.

    ``target_weights = (t0, t1)`` asks for an *unequal* split: side 0
    should carry total vertex weight ``t0`` and side 1 ``t1`` (they must
    sum to the graph's total vertex weight).  The default is the 50/50
    split.  With a target, the default strict tolerance is the minimum
    deviation any 2-partition of the vertex weights can achieve.
    """
    if graph.num_vertices == 0:
        raise ValueError("cannot bisect the empty graph")
    rng = resolve_rng(rng)

    total = graph.total_vertex_weight
    if target_weights is None:
        target_diff = 0
        strict_default = default_tolerance(graph)
    else:
        t0, t1 = target_weights
        if t0 < 0 or t1 < 0 or t0 + t1 != total:
            raise ValueError(
                f"target_weights must be nonnegative and sum to {total}, got {target_weights}"
            )
        target_diff = t0 - t1
        strict_default = minimum_achievable_deviation(
            (graph.vertex_weight(v) for v in graph.vertices()), target_diff
        )

    if init is not None:
        if init.graph is not graph and init.graph != graph:
            raise ValueError("init bisection belongs to a different graph")
        assignment = init.assignment()
    else:
        assignment = random_assignment(graph, rng)

    strict_tol = strict_default if balance_tolerance is None else balance_tolerance
    max_weight = max(graph.vertex_weight(v) for v in graph.vertices())
    loose_tol = max(strict_tol, 2 * max_weight)

    if kernel_backend() != "dict":
        csr_view(graph)  # compile once up front; cut/side weights reuse it

    initial_cut = cut_weight(graph, assignment)
    cut = initial_cut
    passes = 0
    total_moves = 0
    pass_gains: list[int] = []
    stats: dict[str, int] = {}
    with span("fm.run", vertices=graph.num_vertices):
        while max_passes is None or passes < max_passes:
            w0, w1 = side_weights(graph, assignment)
            was_balanced = abs(w0 - w1 - target_diff) <= strict_tol
            with span("fm.pass"):
                gain, kept = _fm_pass(
                    graph, assignment, strict_tol, loose_tol, target_diff, stats
                )
            passes += 1
            cut -= gain
            total_moves += kept
            if kept:
                pass_gains.append(gain)
            if gain <= 0 and was_balanced:
                break
            if kept == 0:
                break

    counter("fm_runs_total").inc()
    counter("fm_passes_total").inc(passes)
    counter("fm_moves_considered_total").inc(stats.get("moves_considered", 0))
    counter("fm_moves_committed_total").inc(total_moves)
    counter("fm_stale_pops_total").inc(stats.get("stale_pops", 0))
    counter("fm_stash_restores_total").inc(stats.get("stash_restores", 0))

    result = Bisection(graph, assignment)
    assert result.cut == cut, "incremental cut diverged from recomputation"
    return FMResult(
        bisection=result,
        initial_cut=initial_cut,
        passes=passes,
        pass_gains=pass_gains,
        moves=total_moves,
    )
