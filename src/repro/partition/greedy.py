"""Greedy local improvement — the "iterative improvement" strawman.

The paper's Section II frames simulated annealing as a generalization of
plain iterative improvement ("neighborhood search"), whose drawback is
"stopping at a local, but not global, optimum".  This module implements
that baseline: steepest-descent pair swaps applied while any swap reduces
the cut.  It terminates at the first local optimum, providing the lower
anchor that SA and KL are measured against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graphs.graph import Graph
from ..rng import resolve_rng
from .bisection import Bisection, cut_weight
from .random_init import random_assignment

__all__ = ["greedy_improvement", "GreedyResult"]


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy descent: final bisection and step count."""

    bisection: Bisection
    initial_cut: int
    swaps: int

    @property
    def cut(self) -> int:
        return self.bisection.cut


def _best_swap(graph: Graph, assignment: dict, gains: dict):
    """Best positive-gain equal-weight swap ``(gain, a, b)`` or ``None``.

    Exhaustive over candidate pairs built from the top gains of each side
    (sufficient because ``g_ab <= g_a + g_b``): vertices are bucketed per
    (side, weight) and only the top bucket entries can participate in the
    best pair.
    """
    by_class: dict[tuple[int, int], list] = {}
    for v in graph.vertices():
        by_class.setdefault((assignment[v], graph.vertex_weight(v)), []).append(v)

    best = None
    # Sorted, not raw set order: when two weight classes offer equally good
    # swaps, the winner is whichever class is scanned first, and small-int
    # set order varies with insertion history (hash collisions mod table
    # size), which would make the pick depend on graph construction order.
    weights = sorted({w for _, w in by_class})
    for w in weights:
        side0 = by_class.get((0, w))
        side1 = by_class.get((1, w))
        if not side0 or not side1:
            continue
        side0 = sorted(side0, key=gains.__getitem__, reverse=True)[:8]
        side1 = sorted(side1, key=gains.__getitem__, reverse=True)[:8]
        for a in side0:
            for b in side1:
                gain = gains[a] + gains[b] - 2 * graph.edge_weight(a, b)
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, a, b)
    return best


def greedy_improvement(
    graph: Graph,
    init: Bisection | None = None,
    rng: random.Random | int | None = None,
    max_swaps: int | None = None,
) -> GreedyResult:
    """Steepest-descent pair swapping until no swap improves the cut."""
    if graph.num_vertices == 0:
        raise ValueError("cannot bisect the empty graph")
    if init is not None:
        assignment = init.assignment()
    else:
        assignment = random_assignment(graph, resolve_rng(rng))

    gains: dict = {}
    for v in graph.vertices():
        side_v = assignment[v]
        gains[v] = sum(
            w if assignment[u] != side_v else -w for u, w in graph.neighbor_items(v)
        )

    initial_cut = cut_weight(graph, assignment)
    swaps = 0
    while max_swaps is None or swaps < max_swaps:
        best = _best_swap(graph, assignment, gains)
        if best is None:
            break
        _, a, b = best
        assignment[a], assignment[b] = assignment[b], assignment[a]
        swaps += 1
        # Recompute gains of the swapped pair and their neighborhoods.
        # dict.fromkeys dedupes like a set but iterates in insertion order,
        # keeping the update sequence independent of hash layout.
        touched = dict.fromkeys((a, b))
        touched.update(dict.fromkeys(graph.neighbors(a)))
        touched.update(dict.fromkeys(graph.neighbors(b)))
        for v in touched:
            side_v = assignment[v]
            gains[v] = sum(
                w if assignment[u] != side_v else -w for u, w in graph.neighbor_items(v)
            )

    return GreedyResult(
        bisection=Bisection(graph, assignment),
        initial_cut=initial_cut,
        swaps=swaps,
    )
