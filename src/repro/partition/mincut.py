"""Global minimum cut (Stoer-Wagner) — an unconditional bisection lower bound.

The *global* min cut drops the balance constraint, so it can never exceed
the bisection width; on graphs with planted structure it certifies how
close a heuristic bisection is to optimal.  Stoer-Wagner computes it
exactly in O(V^3) time (O(V^2 log V + VE) with heaps, which this
implementation uses) — comfortably fast for the paper's graph sizes.

Reference: M. Stoer and F. Wagner, "A simple min-cut algorithm",
J. ACM 44(4), 1997.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from heapq import heappop, heappush

from ..graphs.graph import Graph

__all__ = ["stoer_wagner", "GlobalMinCut"]

Vertex = Hashable


@dataclass(frozen=True)
class GlobalMinCut:
    """A global minimum cut: its weight and one side of the partition."""

    weight: int
    side: frozenset


def stoer_wagner(graph: Graph) -> GlobalMinCut:
    """Exact global minimum edge cut of a connected weighted graph.

    Raises ``ValueError`` on graphs with fewer than 2 vertices.
    Disconnected graphs return weight 0 with one component as the side.
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices")

    # Disconnected graphs short-circuit: any component is a 0-cut.
    from ..graphs.traversal import bfs_order

    first = next(iter(graph.vertices()))
    reachable = bfs_order(graph, first)
    if len(reachable) < n:
        return GlobalMinCut(weight=0, side=frozenset(reachable))

    # Working adjacency on supernodes; merged[x] tracks the original
    # vertices a supernode represents.
    adj: dict[Vertex, dict[Vertex, int]] = {
        v: dict(graph.adjacency(v)) for v in graph.vertices()
    }
    merged: dict[Vertex, set] = {v: {v} for v in graph.vertices()}

    best_weight: int | None = None
    best_side: frozenset = frozenset()

    while len(adj) > 1:
        # Maximum adjacency (minimum cut phase) ordering via a lazy heap.
        start = next(iter(adj))
        in_a = {start}
        weights = {v: 0 for v in adj}
        heap: list = []
        for u, w in adj[start].items():
            weights[u] += w
            heappush(heap, (-weights[u], u))
        order = [start]
        while len(in_a) < len(adj):
            while True:
                neg_w, v = heappop(heap)
                if v not in in_a and weights[v] == -neg_w:
                    break
            in_a.add(v)
            order.append(v)
            for u, w in adj[v].items():
                if u not in in_a:
                    weights[u] += w
                    heappush(heap, (-weights[u], u))

        # Cut-of-the-phase: the last-added vertex against the rest.
        t = order[-1]
        s = order[-2]
        phase_weight = sum(adj[t].values())
        if best_weight is None or phase_weight < best_weight:
            best_weight = phase_weight
            best_side = frozenset(merged[t])

        # Merge t into s.
        for u, w in adj[t].items():
            if u == s:
                continue
            adj[s][u] = adj[s].get(u, 0) + w
            adj[u][s] = adj[s][u]
            del adj[u][t]
        adj[s].pop(t, None)
        del adj[t]
        merged[s] |= merged[t]
        del merged[t]

    assert best_weight is not None
    return GlobalMinCut(weight=best_weight, side=best_side)
