"""Exact bisection by exhaustive search — the test oracle for tiny graphs.

Enumerates all balanced splits with vertex 0 pinned to side 0 (halving the
symmetric search space) and returns a minimum-cut bisection.  Feasible to
roughly ``|V| = 24`` for unit weights; every heuristic's unit tests
compare against this on small instances.
"""

from __future__ import annotations

from itertools import combinations

from ..graphs.graph import Graph
from .bisection import Bisection, cut_weight, default_tolerance

__all__ = ["exact_bisection", "exact_bisection_width"]

_MAX_VERTICES = 30


def exact_bisection(graph: Graph, balance_tolerance: int | None = None) -> Bisection:
    """A provably minimum-cut balanced bisection of a small graph.

    Raises ``ValueError`` above ``30`` vertices (the enumeration would be
    astronomically slow) or when no split meets the balance tolerance.
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices")
    if n > _MAX_VERTICES:
        raise ValueError(f"exact search is limited to {_MAX_VERTICES} vertices, got {n}")
    tol = default_tolerance(graph) if balance_tolerance is None else balance_tolerance

    vertices = list(graph.vertices())
    first, rest = vertices[0], vertices[1:]
    total = graph.total_vertex_weight
    first_weight = graph.vertex_weight(first)

    best: Bisection | None = None
    # Side 0 takes `first` plus k of the rest.  For unit weights the
    # balance condition pins k to a narrow band around n/2 - 1, which
    # prunes the sweep from 2^(n-1) subsets to one binomial slice.
    if graph.is_uniform_vertex_weight():
        feasible_k = [
            k for k in range(len(rest) + 1) if abs(2 * (k + 1) - n) <= tol
        ]
    else:
        feasible_k = list(range(len(rest) + 1))
    for k in feasible_k:
        for chosen in combinations(rest, k):
            side0_weight = first_weight + sum(graph.vertex_weight(v) for v in chosen)
            if abs(2 * side0_weight - total) > tol:
                continue
            assignment = {v: 1 for v in vertices}
            assignment[first] = 0
            for v in chosen:
                assignment[v] = 0
            cut = cut_weight(graph, assignment)
            if best is None or cut < best.cut:
                best = Bisection(graph, assignment)
    if best is None:
        raise ValueError(f"no bisection within balance tolerance {tol}")
    return best


def exact_bisection_width(graph: Graph, balance_tolerance: int | None = None) -> int:
    """The true bisection width of a small graph (cut of :func:`exact_bisection`)."""
    return exact_bisection(graph, balance_tolerance).cut
