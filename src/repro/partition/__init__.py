"""Bisection algorithms: KL, SA, FM, and the baseline/oracle solvers."""

from .annealing import AnnealingSchedule, BalanceCost, SAResult, simulated_annealing
from .bisection import (
    Bisection,
    cut_weight,
    default_tolerance,
    minimum_achievable_deviation,
    minimum_achievable_imbalance,
    rebalance,
    side_weights,
)
from .bounds import BisectionBounds, bisection_lower_bound, certify
from .dfs_cycle import bisect_paths_and_cycles
from .exact import exact_bisection, exact_bisection_width
from .mincut import GlobalMinCut, stoer_wagner
from .fm import FMResult, fiduccia_mattheyses
from .greedy import GreedyResult, greedy_improvement
from .io import (
    partition_from_string,
    partition_to_string,
    read_bisection,
    read_partition,
    write_partition,
)
from .kl import KLResult, kernighan_lin, kl_pass
from .kway import KWayPartition, recursive_kway
from .random_init import random_assignment, random_bisection

__all__ = [
    "Bisection",
    "cut_weight",
    "side_weights",
    "default_tolerance",
    "minimum_achievable_imbalance",
    "minimum_achievable_deviation",
    "rebalance",
    "random_bisection",
    "random_assignment",
    "kernighan_lin",
    "kl_pass",
    "KLResult",
    "simulated_annealing",
    "SAResult",
    "AnnealingSchedule",
    "BalanceCost",
    "fiduccia_mattheyses",
    "FMResult",
    "recursive_kway",
    "KWayPartition",
    "greedy_improvement",
    "GreedyResult",
    "exact_bisection",
    "exact_bisection_width",
    "bisect_paths_and_cycles",
    "stoer_wagner",
    "GlobalMinCut",
    "bisection_lower_bound",
    "BisectionBounds",
    "certify",
    "write_partition",
    "read_partition",
    "read_bisection",
    "partition_to_string",
    "partition_from_string",
]
