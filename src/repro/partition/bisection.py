"""The bisection value type and balance utilities.

A *bisection* of ``G = (V, E)`` splits ``V`` into two sides of (as nearly
as possible) equal total vertex weight; its *cut* is the total weight of
edges with one endpoint on each side.  On plain graphs (all vertex weights
1) this is exactly the paper's definition; the weighted generalization is
what compaction needs, because contracted supervertices carry weight 2 (or
more, under recursive coalescing).

Partition heuristics operate on a mutable ``assignment`` dict
(``vertex -> 0 | 1``) for speed, and wrap results in an immutable
:class:`Bisection` at their boundary.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Mapping

from ..graphs.csr import cached_csr, csr_cut_weight, csr_enabled, csr_side_weights
from ..graphs.graph import Graph

__all__ = [
    "Bisection",
    "cut_weight",
    "side_weights",
    "minimum_achievable_imbalance",
    "minimum_achievable_deviation",
    "default_tolerance",
    "rebalance",
]

Vertex = Hashable


def cut_weight(graph: Graph, assignment: Mapping[Vertex, int]) -> int:
    """Total weight of edges crossing the partition described by ``assignment``.

    Uses the graph's CSR view when one is already compiled (the partition
    drivers compile it eagerly); a one-off query on a cold graph keeps the
    plain edge walk rather than paying a compile it would not amortize.
    """
    if csr_enabled():
        csr = cached_csr(graph)
        if csr is not None:
            return csr_cut_weight(csr, csr.sides_list(assignment))
    total = 0
    for u, v, w in graph.edges():
        if assignment[u] != assignment[v]:
            total += w
    return total


def side_weights(graph: Graph, assignment: Mapping[Vertex, int]) -> tuple[int, int]:
    """Total vertex weight on side 0 and side 1."""
    if csr_enabled():
        csr = cached_csr(graph)
        if csr is not None:
            return csr_side_weights(csr, csr.sides_list(assignment))
    w0 = w1 = 0
    for v in graph.vertices():
        if assignment[v] == 0:
            w0 += graph.vertex_weight(v)
        else:
            w1 += graph.vertex_weight(v)
    return w0, w1


def minimum_achievable_imbalance(weights: Iterable[int]) -> int:
    """Smallest possible ``|w(A) - w(B)|`` over all 2-partitions of ``weights``.

    Computed with a bitset subset-sum sweep (``reachable |= reachable << w``),
    which is fast even for thousands of vertices.  For unit weights this is
    ``total % 2``; for contracted graphs (weights in {1, 2}) it is 0, 1, or 2.
    """
    reachable = 1
    total = 0
    for w in weights:
        reachable |= reachable << w
        total += w
    best = total
    half = total // 2
    # Scan sums downward from floor(total/2); the first reachable sum s gives
    # the minimum |total - 2s| on this side of half (and by symmetry overall).
    for s in range(half, -1, -1):
        if (reachable >> s) & 1:
            best = total - 2 * s
            break
    return best


def minimum_achievable_deviation(weights: Iterable[int], target_diff: int) -> int:
    """Smallest possible ``|w(A) - w(B) - target_diff|`` over all 2-partitions.

    Generalizes :func:`minimum_achievable_imbalance` (the ``target_diff=0``
    case) to the unequal splits used by k-way recursive bisection.  Uses
    the same bitset subset-sum sweep: a side-0 sum of ``s`` gives a diff
    of ``2s - total``, so we scan reachable sums around
    ``(total + target_diff) / 2``.
    """
    reachable = 1
    total = 0
    for w in weights:
        reachable |= reachable << w
        total += w
    best = abs(target_diff) + total  # worse than any achievable value
    for s in range(total + 1):
        if (reachable >> s) & 1:
            best = min(best, abs(2 * s - total - target_diff))
    return best


def default_tolerance(graph: Graph) -> int:
    """Default balance tolerance for ``graph``.

    For plain graphs: 0 when ``|V|`` is even, 1 when odd (the paper's
    graphs all have an even vertex count, so this is 0 there).  For
    weighted (contracted) graphs: the exact minimum achievable imbalance.
    """
    if graph.is_uniform_vertex_weight():
        return graph.num_vertices % 2
    return minimum_achievable_imbalance(
        graph.vertex_weight(v) for v in graph.vertices()
    )


class Bisection:
    """An immutable two-way partition of a graph's vertices.

    >>> from repro.graphs.generators import ladder_graph
    >>> g = ladder_graph(4)  # vertices 0..3 top rail, 4..7 bottom rail
    >>> b = Bisection.from_sides(g, [0, 1, 4, 5])
    >>> b.cut          # rails cut once each between positions 1 and 2
    2
    >>> b.imbalance
    0
    """

    __slots__ = ("_graph", "_assignment", "_cut", "_weights")

    def __init__(self, graph: Graph, assignment: Mapping[Vertex, int]):
        missing = [v for v in graph.vertices() if v not in assignment]
        if missing:
            raise ValueError(f"assignment missing {len(missing)} vertices, e.g. {missing[0]!r}")
        bad = [v for v in graph.vertices() if assignment[v] not in (0, 1)]
        if bad:
            raise ValueError(f"assignment values must be 0 or 1 (vertex {bad[0]!r})")
        self._graph = graph
        self._assignment = {v: assignment[v] for v in graph.vertices()}
        self._cut: int | None = None
        self._weights: tuple[int, int] | None = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_sides(cls, graph: Graph, side_zero: Iterable[Vertex]) -> "Bisection":
        """Build from the set of vertices on side 0; the rest go to side 1."""
        zero = set(side_zero)
        unknown = zero - set(graph.vertices())
        if unknown:
            raise ValueError(f"vertices not in graph: {sorted(map(repr, unknown))[:3]}")
        return cls(graph, {v: 0 if v in zero else 1 for v in graph.vertices()})

    # -- accessors ----------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        return self._graph

    def side_of(self, v: Vertex) -> int:
        return self._assignment[v]

    def side(self, which: int) -> frozenset:
        """The set of vertices on side ``which`` (0 or 1)."""
        if which not in (0, 1):
            raise ValueError("side must be 0 or 1")
        return frozenset(v for v, s in self._assignment.items() if s == which)

    def assignment(self) -> dict[Vertex, int]:
        """A mutable copy of the vertex -> side map."""
        return dict(self._assignment)

    @property
    def cut(self) -> int:
        """Total weight of cut edges (cached)."""
        if self._cut is None:
            self._cut = cut_weight(self._graph, self._assignment)
        return self._cut

    @property
    def weights(self) -> tuple[int, int]:
        """Vertex-weight totals ``(w(side 0), w(side 1))`` (cached)."""
        if self._weights is None:
            self._weights = side_weights(self._graph, self._assignment)
        return self._weights

    @property
    def sizes(self) -> tuple[int, int]:
        """Vertex counts per side."""
        n1 = sum(self._assignment.values())
        return len(self._assignment) - n1, n1

    @property
    def imbalance(self) -> int:
        w0, w1 = self.weights
        return abs(w0 - w1)

    def is_balanced(self, tolerance: int | None = None) -> bool:
        """True iff the weighted imbalance is within ``tolerance``.

        ``tolerance=None`` uses :func:`default_tolerance` of the graph.
        """
        if tolerance is None:
            tolerance = default_tolerance(self._graph)
        return self.imbalance <= tolerance

    def matches_sides(self, side_a: Iterable[Vertex]) -> bool:
        """True iff this bisection equals the given split (up to side renaming)."""
        target = frozenset(side_a)
        return self.side(0) == target or self.side(1) == target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bisection):
            return NotImplemented
        if self._graph is not other._graph and self._graph != other._graph:
            return False
        same = all(self._assignment[v] == other._assignment[v] for v in self._assignment)
        if same:
            return True
        return all(self._assignment[v] != other._assignment[v] for v in self._assignment)

    def __repr__(self) -> str:
        n0, n1 = self.sizes
        return f"Bisection(cut={self.cut}, sides=({n0}, {n1}), imbalance={self.imbalance})"


def rebalance(
    graph: Graph,
    assignment: dict[Vertex, int],
    tolerance: int | None = None,
    rng: random.Random | None = None,
) -> dict[Vertex, int]:
    """Move vertices from the heavy side until imbalance <= tolerance (in place).

    Each step moves the vertex whose move hurts the cut least (max gain),
    among heavy-side vertices whose move does not *increase* the imbalance.
    Strict progress is enforced by locking moved vertices: equal-imbalance
    moves (a heavy vertex whose weight equals the whole excess) are allowed
    — they can be a necessary stepping stone on weighted graphs — but each
    vertex moves at most once, so the loop always terminates.

    Used to (a) repair SA incumbents that drifted unbalanced, and (b)
    restore exact balance after projecting a contracted bisection back to
    the original graph.  Returns the same dict for convenience.  Raises
    ``ValueError`` when the tolerance is unreachable this way (callers
    with a weight-aware refiner can fall back to refining unbalanced).
    """
    if tolerance is None:
        tolerance = default_tolerance(graph)
    w0, w1 = side_weights(graph, assignment)
    moved: set = set()
    while abs(w0 - w1) > tolerance:
        heavy = 0 if w0 > w1 else 1
        excess = abs(w0 - w1)
        best_v = None
        best_key = None
        for v in graph.vertices():
            if assignment[v] != heavy or v in moved:
                continue
            wv = graph.vertex_weight(v)
            new_imbalance = abs(excess - 2 * wv)
            if new_imbalance > excess:
                continue
            gain = 0
            for u, w in graph.neighbor_items(v):
                gain += w if assignment[u] != heavy else -w
            # Prefer moves that shrink the imbalance most; break ties by gain.
            key = (-new_imbalance, gain)
            if best_key is None or key > best_key:
                best_key = key
                best_v = v
        if best_v is None:
            raise ValueError(
                f"cannot rebalance to tolerance {tolerance}: no movable vertex "
                f"(imbalance {abs(w0 - w1)})"
            )
        wv = graph.vertex_weight(best_v)
        assignment[best_v] = 1 - heavy
        moved.add(best_v)
        if heavy == 0:
            w0 -= wv
            w1 += wv
        else:
            w1 -= wv
            w0 += wv
    return assignment
