"""Command-line interface: generate graphs, bisect them, print paper tables.

Examples::

    # Generate a Gbreg graph and save it
    repro-bisect generate gbreg --vertices 1000 --width 16 --degree 3 \
        --seed 7 --out graph.edges

    # Bisect a saved graph with every algorithm
    repro-bisect run graph.edges --algorithm ckl --seed 1

    # Best-of-4 starts fanned out over 4 worker processes
    repro-bisect run graph.edges --algorithm ckl --starts 4 --jobs 4

    # Regenerate one of the paper's tables at the current REPRO_SCALE,
    # in parallel, with the result cache making reruns near-free
    repro-bisect table gbreg-d3 --jobs 4

    # Run a declarative batch spec through the engine
    repro-bisect batch jobs.json --jobs 4 --out results.jsonl

    # Canonical fingerprint + stats of a saved graph
    repro-bisect info graph.edges

    # Record a run ledger, then explain a perf delta counter by counter
    repro-bisect table gbreg-d3 --ledger auto
    repro-bisect stats --diff <old.json> <new.json>

    # Verify every registered algorithm against the invariant, exact,
    # and metamorphic oracles (exits non-zero on any violation)
    repro-bisect check --json report.json

    # Serve the engine over HTTP, then load-test it
    repro-bisect serve --port 8642 --workers 4
    repro-bisect load --url http://127.0.0.1:8642 --requests 500 --concurrency 32

    # Interactive graph session (CSV import, path queries, remote submit)
    repro-bisect repl

    # Inspect or bound the content-addressed result cache
    repro-bisect cache stats
    repro-bisect cache prune --max-bytes 50000000
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from .bench import (
    current_scale,
    g2set_cases,
    gbreg_cases,
    gnp_cases,
    grid_cases,
    btree_cases,
    ladder_cases,
    render_generic_table,
    render_paper_table,
    run_workload,
    standard_algorithm_specs,
)
from .engine import (
    AlgorithmSpec,
    Engine,
    Job,
    ResultCache,
    Telemetry,
    Timer,
    read_batch_file,
    run_batch,
)
from .graphs.generators import (
    binary_tree,
    g2set,
    gbreg,
    gnp,
    grid_graph,
    ladder_graph,
)
from .graphs.graph import graph_fingerprint
from .graphs.io import read_edge_list, write_edge_list
from .rng import derive_seed, resolve_rng

__all__ = ["main"]

# Graph bisectors exposed on `run` (all resolved through the engine registry).
_GRAPH_ALGORITHMS = ("ckl", "csa", "cycles", "fm", "greedy", "kl", "multilevel", "sa")

_TABLES = {
    "gbreg-d3": lambda scale: gbreg_cases(scale, 3),
    "gbreg-d4": lambda scale: gbreg_cases(scale, 4),
    "g2set-2.5": lambda scale: g2set_cases(scale, 2.5),
    "g2set-3": lambda scale: g2set_cases(scale, 3.0),
    "g2set-3.5": lambda scale: g2set_cases(scale, 3.5),
    "g2set-4": lambda scale: g2set_cases(scale, 4.0),
    "gnp": lambda scale: gnp_cases(scale),
    "ladder": lambda scale: ladder_cases(scale),
    "grid": lambda scale: grid_cases(scale),
    "btree": lambda scale: btree_cases(scale),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", metavar="PATH",
        help="write a run ledger (counters, spans, env) after the command; "
        "'auto' content-addresses it next to the result cache",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="sample this process during the command and write a "
        "collapsed-stack profile (flamegraph.pl / speedscope format); "
        "REPRO_PROFILE=1 opts in without the flag",
    )


def _add_engine_options(parser: argparse.ArgumentParser, cache: bool = True) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the execution engine (1 = serial)",
    )
    parser.add_argument(
        "--telemetry",
        help="append engine telemetry events (and trace spans) to this JSONL file",
    )
    _add_obs_options(parser)
    if cache:
        parser.add_argument(
            "--no-cache", action="store_true", help="disable the result cache"
        )
        parser.add_argument(
            "--cache-dir",
            help="result cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-bisect)",
        )


def _make_engine(
    args: argparse.Namespace,
    cache: bool = True,
    timeout: float | None = None,
    retries: int = 0,
) -> Engine:
    store = None
    if cache and not getattr(args, "no_cache", False):
        store = ResultCache(getattr(args, "cache_dir", None))
    return Engine(
        jobs=args.jobs,
        cache=store,
        telemetry=Telemetry(getattr(args, "telemetry", None)),
        timeout=timeout,
        retries=retries,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "gbreg":
        graph = gbreg(args.vertices, args.width, args.degree, args.seed).graph
    elif args.model == "g2set":
        graph = g2set(args.vertices, args.p, args.p, args.width, args.seed).graph
    elif args.model == "gnp":
        graph = gnp(args.vertices, args.p, args.seed)
    elif args.model == "ladder":
        graph = ladder_graph(args.vertices // 2)
    elif args.model == "grid":
        side = int(round(args.vertices**0.5))
        graph = grid_graph(side, side)
    elif args.model == "btree":
        graph = binary_tree(args.vertices)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.model)
    write_edge_list(graph, args.out)
    print(f"wrote {graph!r} to {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    spec = AlgorithmSpec.make(args.algorithm)
    engine = _make_engine(args, cache=False)
    if args.starts > 1:
        # Best-of-R protocol: start seeds derive from the master seed
        # exactly as the bench harness derives them.
        master = resolve_rng(args.seed)
        jobs = [
            Job("graph", spec, derive_seed(master, index), job_id=f"start{index}")
            for index in range(args.starts)
        ]
    else:
        jobs = [Job("graph", spec, args.seed, job_id="run")]
    results = engine.run(jobs, {"graph": graph})
    good = [r for r in results if r.ok]
    if not good:
        print(f"{args.algorithm}: all {len(results)} start(s) failed "
              f"({results[0].error})", file=sys.stderr)
        return 1
    best = min(good, key=lambda r: r.cut)
    bisection = best.bisection(graph)
    elapsed = sum(r.seconds for r in results)
    print(
        f"{args.algorithm}: cut={bisection.cut} imbalance={bisection.imbalance} "
        f"time={elapsed:.3f}s |V|={graph.num_vertices} |E|={graph.num_edges}"
    )
    if args.starts > 1:
        print(f"starts: {len(results)}  cuts: {[r.cut for r in results]}")
    if args.certify:
        from .partition.bounds import certify

        report = certify(graph, bisection.cut)
        print(
            f"lower bound: {report['lower']:.2f}  gap ratio: {report['gap_ratio']:.2f}"
            + ("  (provably optimal)" if report["optimal"] else "")
        )
    if args.save_partition:
        from .partition.io import write_partition

        write_partition(bisection, args.save_partition)
        print(f"saved partition to {args.save_partition}")
    if args.show_sides:
        print("side 0:", sorted(map(str, bisection.side(0))))
        print("side 1:", sorted(map(str, bisection.side(1))))
    return 0


def _cmd_kway(args: argparse.Namespace) -> int:
    from .partition.kway import recursive_kway

    graph = read_edge_list(args.graph)
    with Timer() as timer:
        partition = recursive_kway(graph, args.k, rng=args.seed)
    weights = partition.part_weights()
    print(
        f"k={args.k}: cut={partition.cut} part_weights={weights} "
        f"imbalance_ratio={partition.max_imbalance_ratio():.3f} time={timer.seconds:.3f}s"
    )
    if args.save_partition:
        from .partition.io import write_partition

        write_partition(partition, args.save_partition)
        print(f"saved partition to {args.save_partition}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    """Score a saved partition file against its graph."""
    from .partition.io import read_partition

    graph = read_edge_list(args.graph)
    partition = read_partition(graph, args.partition)
    weights = partition.part_weights()
    print(
        f"k={partition.k}: cut={partition.cut} part_weights={weights} "
        f"imbalance_ratio={partition.max_imbalance_ratio():.3f}"
    )
    if partition.k == 2 and args.certify:
        from .partition.bounds import certify

        report = certify(graph, partition.cut)
        print(
            f"lower bound: {report['lower']:.2f}  gap ratio: {report['gap_ratio']:.2f}"
            + ("  (provably optimal)" if report["optimal"] else "")
        )
    return 0


def _cmd_netlist(args: argparse.Namespace) -> int:
    from .hypergraph import (
        compacted_hypergraph_fm,
        hypergraph_fm,
        multilevel_hypergraph_fm,
        random_netlist,
        read_hmetis,
        write_hmetis,
    )

    if args.action == "generate":
        netlist = random_netlist(args.cells, clusters=args.clusters, rng=args.seed)
        write_hmetis(netlist, args.file)
        print(f"wrote {netlist!r} to {args.file}")
        return 0

    netlist = read_hmetis(args.file)
    if args.k > 2:
        from .hypergraph.kway import recursive_kway_hypergraph

        with Timer() as timer:
            partition = recursive_kway_hypergraph(netlist, args.k, rng=args.seed)
        print(
            f"kway k={args.k}: cut_nets={partition.cut_nets} "
            f"connectivity-1={partition.connectivity_minus_one} "
            f"part_weights={partition.part_weights()} time={timer.seconds:.3f}s"
        )
        return 0
    runners = {
        "fm": hypergraph_fm,
        "cfm": compacted_hypergraph_fm,
        "multilevel": multilevel_hypergraph_fm,
    }
    with Timer() as timer:
        result = runners[args.algorithm](netlist, rng=args.seed)
    bisection = result.bisection
    print(
        f"{args.algorithm}: net_cut={bisection.cut} imbalance={bisection.imbalance} "
        f"time={timer.seconds:.3f}s |V|={netlist.num_vertices} |N|={netlist.num_nets}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import generate_report

    scale = current_scale()
    engine = _make_engine(args)
    text = generate_report(
        scale, rng=args.seed, include_sa=not args.kl_only, engine=engine
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    scale = current_scale()
    cases = _TABLES[args.table](scale)
    include_sa = not args.kl_only
    algorithms = standard_algorithm_specs(scale, include_sa=include_sa)
    engine = _make_engine(args)
    rows = run_workload(
        cases, algorithms, rng=args.seed, starts=scale.starts, engine=engine
    )
    pairs = (("sa", "csa"), ("kl", "ckl")) if include_sa else (("kl", "ckl"),)
    print(
        render_paper_table(
            f"table {args.table} @ scale={scale.name}", rows, base_pairs=pairs
        )
    )
    print(engine.telemetry.render_summary())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        entries = read_batch_file(args.spec)
    except (OSError, ValueError) as exc:
        print(f"cannot read batch spec {args.spec}: {exc}", file=sys.stderr)
        return 1
    if not entries:
        print("batch spec has no jobs", file=sys.stderr)
        return 1
    engine = _make_engine(args, timeout=args.timeout, retries=args.retries)
    try:
        rows = run_batch(entries, engine)
    except OSError as exc:  # a spec entry names an unreadable graph file
        print(f"batch failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            for row in rows:
                stream.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"wrote {len(rows)} result(s) to {args.out}")
    print(
        render_generic_table(
            ["label", "algorithm", "status", "cut", "time(s)", "cached"],
            [
                [
                    row["label"],
                    row["algorithm"],
                    row["status"],
                    "-" if row["cut"] is None else row["cut"],
                    f"{row['seconds']:.2f}",
                    f"{row['cache_hits']}/{row['starts']}",
                ]
                for row in rows
            ],
            title=f"batch {args.spec}",
        )
    )
    print(engine.telemetry.render_summary())
    return 0 if all(row["status"] == "ok" for row in rows) else 1


def _cmd_info(args: argparse.Namespace) -> int:
    from .graphs.traversal import connected_components

    graph = read_edge_list(args.graph)
    print(f"path: {args.graph}")
    print(f"fingerprint: {graph_fingerprint(graph)}")
    print(f"vertices: {graph.num_vertices}")
    print(f"edges: {graph.num_edges}")
    print(f"total edge weight: {graph.total_edge_weight}")
    print(f"total vertex weight: {graph.total_vertex_weight}")
    print(f"average degree: {graph.average_degree():.3f}")
    print(f"connected components: {len(connected_components(graph))}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .bench.perf import (
        PERF_SIZES,
        SMALL_SIZES,
        diff_snapshots,
        load_snapshot,
        measure_size,
        render_diff,
        render_snapshot,
        snapshot_path,
        write_snapshot,
    )

    if args.diff:
        old_path, new_path = args.diff
        try:
            report = diff_snapshots(
                load_snapshot(old_path), load_snapshot(new_path), args.threshold
            )
        except (OSError, ValueError) as exc:
            print(f"cannot diff snapshots: {exc}", file=sys.stderr)
            return 2
        print(render_diff(report))
        return 0 if report["ok"] else 1

    sizes = args.size or (SMALL_SIZES if args.small else PERF_SIZES)
    exit_code = 0
    for two_n in sizes:
        snapshot = measure_size(
            two_n,
            seed=args.seed,
            sa_size_factor=args.sa_size_factor,
            repeats=args.repeats,
        )
        print(render_snapshot(snapshot))
        if not snapshot["ok"]:
            print(
                f"2n={two_n}: CSR and dict paths disagree (see 'match' column)",
                file=sys.stderr,
            )
            exit_code = 1
        path = write_snapshot(snapshot, args.out_dir)
        print(f"wrote {path}")
        if args.check:
            baseline_path = snapshot_path(args.check, two_n)
            try:
                baseline = load_snapshot(baseline_path)
            except OSError:
                print(f"no baseline {baseline_path}; skipping diff", file=sys.stderr)
                continue
            except ValueError as exc:
                print(f"bad baseline: {exc}", file=sys.stderr)
                exit_code = 1
                continue
            try:
                report = diff_snapshots(baseline, snapshot, args.threshold)
            except ValueError as exc:
                print(f"cannot diff against baseline: {exc}", file=sys.stderr)
                exit_code = 1
                continue
            print(render_diff(report))
            if not report["ok"]:
                exit_code = 1
    return exit_code


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import (
        diff_ledgers,
        ledger_dir,
        load_ledger,
        render_ledger,
        render_ledger_diff,
        render_ledger_prometheus,
        validate_ledger,
    )

    if args.diff:
        old_path, new_path = args.diff
        try:
            report = diff_ledgers(load_ledger(old_path), load_ledger(new_path))
        except (OSError, ValueError) as exc:
            print(f"cannot diff ledgers: {exc}", file=sys.stderr)
            return 2
        print(render_ledger_diff(report))
        return 0

    if not args.ledgers:
        # No arguments: list what the ledger directory holds.
        directory = ledger_dir()
        rows = []
        for path in sorted(directory.glob("*.json")) if directory.is_dir() else []:
            try:
                ledger = load_ledger(path)
            except (OSError, ValueError):
                continue
            rows.append(
                [
                    path.name,
                    ledger.get("run_id", "?"),
                    " ".join(ledger.get("argv", []))[:48] or "-",
                    f"{ledger.get('wall_seconds', 0.0):.2f}",
                ]
            )
        if not rows:
            print(f"no ledgers under {directory} (record one with --ledger auto)")
            return 0
        print(
            render_generic_table(
                ["file", "run id", "argv", "wall(s)"],
                rows,
                title=f"ledgers in {directory}",
            )
        )
        return 0

    exit_code = 0
    for index, path in enumerate(args.ledgers):
        try:
            ledger = load_ledger(path)
        except (OSError, ValueError) as exc:
            print(f"cannot read ledger {path}: {exc}", file=sys.stderr)
            exit_code = 2
            continue
        if args.validate:
            violations = validate_ledger(ledger)
            if violations:
                for violation in violations:
                    print(f"{path}: {violation}", file=sys.stderr)
                exit_code = exit_code or 1
            else:
                print(f"{path}: valid")
            continue
        if index:
            print()
        if args.prometheus:
            print(render_ledger_prometheus(ledger), end="")
        else:
            print(render_ledger(ledger))
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.timeline import (
        export_chrome_trace,
        read_event_records,
        validate_chrome_trace,
        write_chrome_trace,
    )

    try:
        records = read_event_records(args.events)
    except OSError as exc:
        print(f"cannot read {args.events}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"{args.events}: no envelope records found", file=sys.stderr)
        return 1
    document = export_chrome_trace(records)
    violations = validate_chrome_trace(document)
    if violations:
        for violation in violations:
            print(f"trace: {violation}", file=sys.stderr)
        return 1
    other = document["otherData"]
    lanes = sum(1 for e in document["traceEvents"] if e.get("ph") == "M")
    path = write_chrome_trace(document, args.out)
    print(
        f"wrote {path} ({other['spans']} spans, {other['events']} events, "
        f"{lanes} lane(s)) — load it at https://ui.perfetto.dev"
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    return run_top(
        events=args.events,
        url=args.url,
        interval=args.interval,
        once=args.once,
        frames=args.frames,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    from .engine import algorithm_names
    from .verify import DEFAULT_FAMILIES, run_check

    known = set(algorithm_names())
    unknown = sorted(set(args.algorithm or []) - known)
    if unknown:
        print(
            f"unknown algorithm(s): {', '.join(unknown)} "
            f"(registered: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    bad_families = sorted(set(args.family or []) - set(DEFAULT_FAMILIES))
    if bad_families:
        print(
            f"unknown corpus family(s): {', '.join(bad_families)} "
            f"(known: {', '.join(DEFAULT_FAMILIES)})",
            file=sys.stderr,
        )
        return 2
    families = tuple(args.family) if args.family else DEFAULT_FAMILIES
    if args.quick:
        sizes: tuple[int, ...] = (10,)
        seeds: tuple[int, ...] = (0,)
    else:
        sizes = (10, 16)
        seeds = tuple(range(args.seeds))
    report = run_check(
        algorithms=args.algorithm or None,
        families=families,
        sizes=sizes,
        seeds=seeds,
        include_exact=not args.no_exact,
        include_metamorphic=not args.no_metamorphic,
        jobs=args.jobs,
    )
    print(report.render(verbose=args.verbose))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        AnalysisConfig,
        default_baseline_path,
        default_config,
        render_json,
        render_text,
        to_sarif,
        update_baseline,
        valid_rule_ids,
    )
    from .analysis.lintcache import run_cached_analysis
    from .analysis.runner import analyze

    if args.root:
        config = AnalysisConfig(root=Path(args.root))
    else:
        config = default_config()
    rule_ids: list[str] = []
    for chunk in args.rule or []:
        rule_ids.extend(part.strip() for part in chunk.split(",") if part.strip())
    if rule_ids:
        unknown = sorted(set(rule_ids) - set(valid_rule_ids()))
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(valid: {', '.join(valid_rule_ids())})",
                file=sys.stderr,
            )
            return 2
        config = replace(config, rules=tuple(rule_ids))
    if args.dry_run and not args.fix:
        print("--dry-run only makes sense with --fix", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()

    if args.update_baseline:
        from .analysis import Baseline

        findings, _, _ = analyze(config)
        baseline = update_baseline(findings, Baseline.load(baseline_path))
        baseline.save(baseline_path)
        todo = sum(1 for e in baseline.entries if e.problem())
        print(f"wrote {baseline_path} ({len(baseline.entries)} entries, {todo} needing justification)")
        return 0

    result, stats = run_cached_analysis(
        config, baseline_path, use_cache=not args.no_cache
    )
    if stats.enabled:
        print(stats.describe(), file=sys.stderr)
    if args.cache_stats:
        with open(args.cache_stats, "w", encoding="utf-8") as handle:
            json.dump(stats.to_json(), handle, indent=2)
            handle.write("\n")

    if args.fix:
        from .analysis.fixes import plan_fixes

        plan = plan_fixes(config, result.findings)
        summary = (
            f"{plan.fixed_count} finding(s) auto-fixable in "
            f"{len(plan.modules)} file(s); {len(plan.skipped)} left for a human"
        )
        if args.dry_run:
            sys.stdout.write(plan.diff())
            print(f"dry run: {summary}")
            return 0
        touched = plan.apply()
        for rel in touched:
            print(f"rewrote {rel}")
        print(f"applied: {summary}")
        return 0

    if args.format == "sarif":
        sarif = to_sarif(
            result.findings,
            result.suppressed_with_justifications(),
            result.rules,
        )
        text = json.dumps(sarif, indent=2)
    elif args.format == "json":
        text = render_json(
            result.findings,
            result.suppressed,
            result.stale,
            result.baseline_problems,
            result.modules_scanned,
        )
    else:
        text = render_text(
            result.findings,
            result.suppressed,
            result.stale,
            result.baseline_problems,
            result.modules_scanned,
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    if args.check and not result.ok:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import make_server

    store = None if args.no_cache else ResultCache(getattr(args, "cache_dir", None))
    api_keys = None
    if args.api_keys:
        try:
            with open(args.api_keys, encoding="utf-8") as stream:
                api_keys = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read API key table {args.api_keys}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(api_keys, dict):
            print(f"{args.api_keys}: expected a JSON object of key -> tenant spec",
                  file=sys.stderr)
            return 2
    server = make_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=store,
        telemetry=Telemetry(getattr(args, "telemetry", None)),
        api_keys=api_keys,
        quiet=not args.verbose,
        default_timeout=args.timeout,
        default_retries=args.retries,
        max_inflight=args.max_inflight,
        max_graphs=args.max_graphs,
    )
    cache_note = "off" if store is None else str(store.root)
    tenancy = "open (no API keys)" if api_keys is None else f"{len(api_keys)} tenant(s)"
    print(f"serving on {server.url}")
    print(f"workers: {args.workers}  cache: {cache_note}  tenancy: {tenancy}")
    print("endpoints: /v1/health /v1/graphs /v1/jobs /v1/results /metrics "
          "(Ctrl-C stops)")
    try:
        server.serve_forever()
    finally:
        # Runs on Ctrl-C too: stop accepting, drain the worker pool, then
        # let the KeyboardInterrupt propagate to main() for exit code 130.
        server.close()
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from .service import run_repl

    return run_repl(sys.stdin, sys.stdout)


def _cmd_load(args: argparse.Namespace) -> int:
    from .service import render_load_report, run_load

    generator_params = {
        "vertices": args.vertices,
        "width": args.width,
        "degree": args.degree,
        "seed": args.graph_seed,
    }
    if args.url:
        report = run_load(
            args.url,
            requests=args.requests,
            concurrency=args.concurrency,
            rounds=args.rounds,
            algorithm=args.algorithm,
            distinct_seeds=args.distinct_seeds,
            generator_params=generator_params,
            api_key=args.api_key,
            job_timeout=args.job_timeout,
        )
    else:
        # No --url: boot an in-process server on an ephemeral port and
        # load-test that, so the command is self-contained.
        from .service import ServiceThread

        store = None if args.no_cache else ResultCache(getattr(args, "cache_dir", None))
        with ServiceThread(
            workers=args.workers, cache=store,
            telemetry=Telemetry(getattr(args, "telemetry", None)),
            max_inflight=max(64, 2 * args.concurrency),
        ) as service:
            print(f"self-serving on {service.url} ({args.workers} worker(s))")
            report = run_load(
                service.url,
                requests=args.requests,
                concurrency=args.concurrency,
                rounds=args.rounds,
                algorithm=args.algorithm,
                distinct_seeds=args.distinct_seeds,
                generator_params=generator_params,
                job_timeout=args.job_timeout,
            )
    print(render_load_report(report))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json_out}")
    return 0 if report["ok"] else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultCache(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = store.stats()
        print(f"root: {stats['root']}")
        print(f"entries: {stats['entries']}")
        print(f"bytes: {stats['bytes']}")
        if stats["entries"]:
            span_seconds = (stats["newest_mtime"] or 0) - (stats["oldest_mtime"] or 0)
            print(f"write span: {span_seconds:.0f}s")
        return 0
    # prune
    if args.max_bytes is None:
        print("cache prune requires --max-bytes", file=sys.stderr)
        return 2
    report = store.prune(args.max_bytes)
    print(
        f"removed {report['removed']} entr{'y' if report['removed'] == 1 else 'ies'}, "
        f"freed {report['freed_bytes']} bytes, kept {report['kept_bytes']} bytes"
    )
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .service.client import ServiceClientError
    from .study import (
        build_study_ledger,
        preset_grid,
        render_study,
        run_study_local,
        run_study_remote,
    )

    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else None
    grid = preset_grid(
        args.preset,
        two_n=args.two_n,
        algorithms=algorithms,
        seeds_per_cell=args.seeds,
        graph_seed=args.graph_seed,
        sa_size_factor=args.sa_size_factor,
    )

    def execute():
        if args.remote:
            return run_study_remote(
                grid,
                master_seed=args.seed,
                base_url=args.remote,
                clients=args.clients,
                api_key=args.api_key,
                job_timeout=args.job_timeout,
            )
        return run_study_local(grid, master_seed=args.seed, engine=_make_engine(args))

    # Study owns its ledger (kind "study" + the aggregation payload), so
    # _dispatch's generic --ledger wrapper is skipped for this command.
    try:
        if args.ledger is None:
            outcome = execute()
        else:
            from .obs import run_context, write_ledger

            with run_context(
                jsonl_path=getattr(args, "telemetry", None),
                workload={"command": "study", "preset": grid.name},
            ) as run:
                outcome = execute()
            ledger = build_study_ledger(run, outcome, argv=sys.argv[1:])
            ledger_path = write_ledger(
                ledger, None if args.ledger == "auto" else args.ledger
            )
    except ServiceClientError as exc:
        # Graph setup against a dead/unreachable service fails before any
        # job traffic; surface it instead of reporting an empty study.
        print(f"study: service unreachable: {exc}", file=sys.stderr)
        return 1
    print(render_study(outcome))
    if args.ledger is not None:
        print(f"wrote study ledger {ledger_path}")
    if outcome.failed_requests:
        print(f"study: {outcome.failed_requests} failed request(s)", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bisect",
        description="Graph bisection: KL, SA, and the compaction heuristic (DAC 1989).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a graph and write an edge list")
    gen.add_argument("model", choices=["gbreg", "g2set", "gnp", "ladder", "grid", "btree"])
    gen.add_argument("--vertices", type=int, required=True, help="number of vertices (2n)")
    gen.add_argument("--width", type=int, default=8, help="planted bisection width b")
    gen.add_argument("--degree", type=int, default=3, help="Gbreg regular degree d")
    gen.add_argument("--p", type=float, default=0.002, help="edge probability")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output edge-list path")
    gen.set_defaults(func=_cmd_generate)

    run = sub.add_parser("run", help="bisect a saved graph")
    run.add_argument("graph", help="edge-list path")
    run.add_argument("--algorithm", choices=_GRAPH_ALGORITHMS, default="ckl")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--starts", type=int, default=1,
        help="independent random starts (best cut wins; paper protocol is 2)",
    )
    run.add_argument("--show-sides", action="store_true")
    run.add_argument(
        "--certify", action="store_true",
        help="also compute bisection-width lower bounds (Stoer-Wagner, spectral)",
    )
    run.add_argument("--save-partition", help="write the resulting partition to this path")
    _add_engine_options(run, cache=False)
    run.set_defaults(func=_cmd_run)

    kway = sub.add_parser("kway", help="k-way partition a saved graph")
    kway.add_argument("graph", help="edge-list path")
    kway.add_argument("--k", type=int, required=True, help="number of parts")
    kway.add_argument("--seed", type=int, default=0)
    kway.add_argument("--save-partition", help="write the resulting partition to this path")
    kway.set_defaults(func=_cmd_kway)

    score = sub.add_parser("score", help="score a saved partition against its graph")
    score.add_argument("graph", help="edge-list path")
    score.add_argument("partition", help="partition file path")
    score.add_argument("--certify", action="store_true")
    score.set_defaults(func=_cmd_score)

    netlist = sub.add_parser("netlist", help="generate or bisect hMETIS netlists")
    netlist.add_argument("action", choices=["generate", "run"])
    netlist.add_argument("file", help="hMETIS (.hgr) path")
    netlist.add_argument("--cells", type=int, default=500)
    netlist.add_argument("--clusters", type=int, default=8)
    netlist.add_argument(
        "--algorithm", choices=["fm", "cfm", "multilevel"], default="multilevel"
    )
    netlist.add_argument(
        "--k", type=int, default=2, help="parts for k-way netlist partitioning (run only)"
    )
    netlist.add_argument("--seed", type=int, default=0)
    netlist.set_defaults(func=_cmd_netlist)

    report = sub.add_parser(
        "report", help="run every paper table at REPRO_SCALE into one markdown report"
    )
    report.add_argument("--out", help="output path (default: stdout)")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--kl-only", action="store_true", help="skip SA/CSA")
    _add_engine_options(report)
    report.set_defaults(func=_cmd_report)

    table = sub.add_parser("table", help="regenerate a paper table at REPRO_SCALE")
    table.add_argument("table", choices=sorted(_TABLES))
    table.add_argument("--seed", type=int, default=0)
    table.add_argument(
        "--kl-only", action="store_true", help="skip SA/CSA (much faster)"
    )
    _add_engine_options(table)
    table.set_defaults(func=_cmd_table)

    batch = sub.add_parser(
        "batch", help="run a declarative JSON batch spec through the engine"
    )
    batch.add_argument("spec", help="batch spec path (JSON; see docs/engine.md)")
    batch.add_argument("--out", help="write per-entry results to this JSONL path")
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job wall-clock timeout in seconds",
    )
    batch.add_argument(
        "--retries", type=int, default=0,
        help="default retries per job (each retry gets a fresh derived seed)",
    )
    _add_engine_options(batch)
    batch.set_defaults(func=_cmd_batch)

    info = sub.add_parser(
        "info", help="canonical fingerprint and stats of a saved graph"
    )
    info.add_argument("graph", help="edge-list path")
    info.set_defaults(func=_cmd_info)

    perf = sub.add_parser(
        "perf",
        help="benchmark the CSR fast path against the dict baseline "
        "(writes BENCH_<n>.json snapshots; can diff two snapshots)",
    )
    perf.add_argument(
        "--small", action="store_true",
        help="only 2n = 500 and 2000 (the CI sizes)",
    )
    perf.add_argument(
        "--size", type=_positive_int, action="append",
        help="benchmark only this 2n (repeatable; overrides --small)",
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--sa-size-factor", type=_positive_int, default=4,
        help="SA/CSA temperature length factor (default: 4)",
    )
    perf.add_argument(
        "--repeats", type=_positive_int, default=1,
        help="timed repetitions per cell; minimum wall time wins (default: 1)",
    )
    perf.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<n>.json snapshots (default: cwd)",
    )
    perf.add_argument(
        "--check", metavar="DIR",
        help="after measuring, diff each snapshot against DIR/BENCH_<n>.json "
        "and exit non-zero on regression",
    )
    perf.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"),
        help="just diff two snapshot files (no measurement)",
    )
    perf.add_argument(
        "--threshold", type=float, default=0.25,
        help="speedup-ratio regression threshold for diffs (default: 0.25)",
    )
    _add_obs_options(perf)
    perf.set_defaults(func=_cmd_perf)

    stats = sub.add_parser(
        "stats",
        help="render run ledgers as an ASCII dashboard, or diff two of them",
    )
    stats.add_argument(
        "ledgers", nargs="*",
        help="ledger JSON path(s) to render (none: list the ledger directory)",
    )
    stats.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"),
        help="counter-level explanation of what changed between two runs",
    )
    stats.add_argument(
        "--validate", action="store_true",
        help="check each ledger against the schema; exit non-zero on violations",
    )
    stats.add_argument(
        "--prometheus", action="store_true",
        help="dump metrics in Prometheus text format instead of the dashboard",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="export a telemetry/span JSONL file as a Chrome trace "
        "(Perfetto-loadable) timeline",
    )
    trace.add_argument("action", choices=["export"])
    trace.add_argument(
        "events",
        help="JSONL file from --telemetry / --ledger runs (spans + engine events)",
    )
    trace.add_argument(
        "--out", default="trace.json",
        help="output trace path (default: trace.json)",
    )
    trace.set_defaults(func=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live TTY dashboard over a telemetry file or a served /metrics",
    )
    top.add_argument(
        "events", nargs="?", default=None,
        help="telemetry JSONL file a concurrent run is appending to",
    )
    top.add_argument(
        "--url", help="poll this repro-bisect serve base URL instead of a file"
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (default: 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen control; CI mode)",
    )
    top.add_argument(
        "--frames", type=_positive_int, default=None,
        help="stop after this many refreshes (default: until Ctrl-C)",
    )
    top.set_defaults(func=_cmd_top)

    check = sub.add_parser(
        "check",
        help="verify every registered algorithm against the invariant, "
        "exact, and metamorphic oracles",
    )
    check.add_argument(
        "--algorithm", action="append",
        help="check only this algorithm (repeatable; default: all registered)",
    )
    check.add_argument(
        "--family", action="append",
        help="corpus family (repeatable; default: all families)",
    )
    check.add_argument(
        "--seeds", type=_positive_int, default=3,
        help="seeds per instance (default: 3)",
    )
    check.add_argument(
        "--quick", action="store_true",
        help="one size, one seed per family (smoke mode)",
    )
    check.add_argument("--json", help="also write the full JSON report here")
    check.add_argument(
        "--no-exact", action="store_true",
        help="skip the brute-force exact-oracle section",
    )
    check.add_argument(
        "--no-metamorphic", action="store_true",
        help="skip the metamorphic-relation section",
    )
    check.add_argument(
        "--jobs", type=_positive_int, default=2,
        help="worker processes for the jobs-equivalence relation (default: 2)",
    )
    check.add_argument(
        "--verbose", action="store_true", help="list every record, not just failures"
    )
    check.set_defaults(func=_cmd_check)

    lint = sub.add_parser(
        "lint",
        help="statically check the source tree against the determinism, "
        "invariant, and concurrency/lifetime ruleset (R001-R016)",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--check", action="store_true",
        help="exit non-zero on unsuppressed findings, stale baseline "
        "entries, or missing justifications",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover current findings (new entries "
        "get a TODO justification that --check rejects)",
    )
    lint.add_argument(
        "--baseline",
        help="baseline file (default: the checked-in analysis/baseline.json)",
    )
    lint.add_argument(
        "--root",
        help="package directory to scan (default: the installed repro package)",
    )
    lint.add_argument(
        "--rule", action="append",
        help="run only these rule ids (repeatable and/or comma-separated, "
        "e.g. --rule R002,R013; default: all rules)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="ignore the incremental lint cache and re-analyze everything",
    )
    lint.add_argument(
        "--cache-stats",
        help="write cache hit/miss statistics as JSON to this path",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="rewrite the mechanical findings in place (R002 clock calls, "
        "R010 metric names, R013 with-wrapping) and exit",
    )
    lint.add_argument(
        "--dry-run", action="store_true",
        help="with --fix: print the unified diff instead of writing files",
    )
    lint.add_argument("--out", help="write the report here instead of stdout")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve", help="serve the partitioning engine over HTTP/JSON"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="engine worker threads shared by all tenants (default: 2)",
    )
    serve.add_argument(
        "--api-keys", metavar="PATH",
        help="JSON file mapping API key -> {name, max_inflight, max_graphs}; "
        "omitted = open mode (one shared 'public' tenant)",
    )
    serve.add_argument(
        "--max-inflight", type=_positive_int, default=64,
        help="default per-tenant in-flight job quota (default: 64)",
    )
    serve.add_argument(
        "--max-graphs", type=_positive_int, default=32,
        help="default per-tenant stored-graph quota (default: 32)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job timeout passed to submissions",
    )
    serve.add_argument(
        "--retries", type=int, default=0,
        help="default per-job retries (each retry derives a fresh seed)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    serve.add_argument(
        "--telemetry",
        help="append engine telemetry events to this JSONL file",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve.add_argument(
        "--cache-dir",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-bisect)",
    )
    serve.set_defaults(func=_cmd_serve)

    repl = sub.add_parser(
        "repl", help="interactive graph session (CSV import, queries, submit)"
    )
    repl.set_defaults(func=_cmd_repl)

    load = sub.add_parser(
        "load", help="load-test a running serve (or a self-served instance)"
    )
    load.add_argument(
        "--url",
        help="service base URL; omitted = boot an in-process server first",
    )
    load.add_argument(
        "--requests", type=_positive_int, default=100,
        help="submit/poll/fetch interactions per round (default: 100)",
    )
    load.add_argument(
        "--concurrency", type=_positive_int, default=8,
        help="concurrent client threads (default: 8)",
    )
    load.add_argument(
        "--rounds", type=_positive_int, default=2,
        help="times to replay the identical request set (default: 2; "
        "round 2 should be nearly all cache hits)",
    )
    load.add_argument(
        "--algorithm", choices=_GRAPH_ALGORITHMS, default="ckl",
        help="algorithm each job runs (default: ckl)",
    )
    load.add_argument(
        "--distinct-seeds", type=_positive_int, default=None,
        help="seed pool size; requests cycle through it "
        "(default: requests // 4)",
    )
    load.add_argument(
        "--vertices", type=_positive_int, default=500,
        help="Gbreg graph size for the workload (default: 500)",
    )
    load.add_argument("--width", type=_positive_int, default=4)
    load.add_argument("--degree", type=_positive_int, default=3)
    load.add_argument("--graph-seed", type=int, default=0)
    load.add_argument("--api-key", help="X-API-Key for keyed servers")
    load.add_argument(
        "--job-timeout", type=float, default=120.0,
        help="per-request poll deadline in seconds (default: 120)",
    )
    load.add_argument(
        "--workers", type=_positive_int, default=2,
        help="worker threads for the self-served instance (no --url only)",
    )
    load.add_argument("--json-out", help="also write the full JSON report here")
    load.add_argument(
        "--no-cache", action="store_true",
        help="self-served instance: disable the result cache",
    )
    load.add_argument(
        "--cache-dir", help="self-served instance: result cache directory"
    )
    load.add_argument(
        "--telemetry", help="self-served instance: telemetry JSONL file"
    )
    load.set_defaults(func=_cmd_load)

    cache = sub.add_parser(
        "cache", help="inspect or bound the content-addressed result cache"
    )
    cache.add_argument("action", choices=["stats", "prune"])
    cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="prune: evict oldest entries until total size fits this budget",
    )
    cache.add_argument(
        "--cache-dir",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-bisect)",
    )
    cache.set_defaults(func=_cmd_cache)

    study = sub.add_parser(
        "study",
        help="ensemble study: cut-size distributions, phase sweeps, tail fits",
    )
    study.add_argument(
        "--preset", choices=["quick", "phase-sweep", "heuristics"], default="quick",
        help="sweep grid: quick (2 cells), phase-sweep (degree sweeps on "
        "Gbreg and Gnp), heuristics (KL/FM/SA/CKL/CSA on one instance)",
    )
    study.add_argument(
        "--seeds", type=_positive_int, default=None,
        help="heuristic seeds per cell (default: the preset's ensemble size)",
    )
    study.add_argument(
        "--two-n", dest="two_n", type=_positive_int, default=None,
        help="override the preset's graph size 2n",
    )
    study.add_argument(
        "--algorithms",
        help="comma-separated registry names overriding the preset's heuristics",
    )
    study.add_argument(
        "--seed", type=int, default=0,
        help="master seed: every cell's run seeds derive from it deterministically",
    )
    study.add_argument(
        "--graph-seed", type=int, default=0,
        help="generator seed for each cell's fixed graph instance",
    )
    study.add_argument(
        "--sa-size-factor", type=_positive_int, default=2,
        help="temperature length multiplier for sa/csa cells",
    )
    study.add_argument(
        "--remote", metavar="URL",
        help="drive a running `repro-bisect serve` at URL instead of the "
        "local engine (doubles as the service load test)",
    )
    study.add_argument(
        "--clients", type=_positive_int, default=8,
        help="worker threads for --remote mode",
    )
    study.add_argument("--api-key", help="service API key for --remote mode")
    study.add_argument(
        "--job-timeout", type=float, default=120.0,
        help="per-job wait timeout in seconds for --remote mode",
    )
    _add_engine_options(study)
    study.set_defaults(func=_cmd_study, study_owns_ledger=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        # Conventional 128+SIGINT exit; the newline keeps the shell prompt
        # off the interrupted command's output line.
        print(file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed early (e.g. `repro-bisect ... | head`).  Point
        # stdout at devnull so the interpreter's exit-time flush doesn't
        # raise a second BrokenPipeError, and exit cleanly.
        import os

        try:
            fd = sys.stdout.fileno()
        except (OSError, ValueError):  # stdout is not a real file (tests)
            fd = None
        if fd is not None:
            os.dup2(os.open(os.devnull, os.O_WRONLY), fd)
        return 0


def _dispatch(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    ledger_target = getattr(args, "ledger", None)
    if getattr(args, "study_owns_ledger", False):
        ledger_target = None  # study builds its own (kind "study") ledger
    profile_target = getattr(args, "profile", None)

    from .obs.profiler import maybe_profile, profiling_enabled

    wants_profile = profile_target is not None or profiling_enabled()
    if ledger_target is None and not wants_profile:
        return args.func(args)

    run = None
    with maybe_profile(force=wants_profile) as profiler:
        if ledger_target is None:
            exit_code = args.func(args)
        else:
            from .obs import run_context

            # The trace JSONL shares the engine telemetry file, so one tail
            # shows both streams correlated by run_id.
            with run_context(
                jsonl_path=getattr(args, "telemetry", None),
                workload={"command": args.command},
            ) as run:
                exit_code = args.func(args)

    if profiler is not None and profile_target is not None:
        path = profiler.write_collapsed(profile_target)
        print(f"wrote profile {path} ({profiler.samples} samples @ {profiler.hz:g}Hz)")
    if ledger_target is not None:
        from .obs import build_ledger, write_ledger

        ledger = build_ledger(
            run, argv=list(argv) if argv is not None else sys.argv[1:]
        )
        if profiler is not None:
            ledger["profile"] = profiler.summary()
        path = write_ledger(ledger, None if ledger_target == "auto" else ledger_target)
        print(f"wrote ledger {path}")
    elif profiler is not None and profile_target is None:
        # REPRO_PROFILE=1 with nowhere to put the profile: don't drop it
        # silently, show the hottest leaves.
        leaves = sorted(
            profiler.leaf_totals().items(), key=lambda item: (-item[1], item[0])
        )
        for label, count in leaves[:10]:
            print(f"profile: {count:6d}  {label}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
