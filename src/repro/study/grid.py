"""Study grids: the (family × size × degree × width × heuristic) sweep space.

A :class:`StudyCell` is one distribution to measure: a single fixed graph
instance (named by a generator spec, so the local and remote runners
build byte-identical graphs) paired with one registry algorithm, to be
run over hundreds of independent heuristic seeds.  A :class:`StudyGrid`
is a named list of cells plus the per-cell ensemble size.

Cells carry *generator specs*, not graphs: the spec is exactly the
``POST /v1/graphs`` body of the HTTP service
(:func:`repro.service.state.graph_from_generator_spec`), which is what
makes ``--remote`` runs reproduce local aggregates bit for bit — both
sides construct the same graph from the same spec and fingerprint it to
the same content address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.workloads import (
    STUDY_GBREG_DEGREES,
    STUDY_GNP_DEGREES,
    parity_fixed_width,
)
from ..engine.job import AlgorithmSpec
from ..engine.registry import algorithm_info
from ..graphs.properties import gnp_probability_for_degree

__all__ = [
    "PRESET_NAMES",
    "StudyCell",
    "StudyGrid",
    "algorithm_specs",
    "preset_grid",
]

#: Heuristics a study may sweep (graph-domain registry names).
STUDY_ALGORITHMS = ("kl", "fm", "sa", "ckl", "csa", "greedy", "multilevel")


@dataclass(frozen=True)
class StudyCell:
    """One ensemble: a fixed generated graph × one registry algorithm."""

    family: str  # "gbreg" | "gnp"
    two_n: int
    degree: float
    width: int | None  # planted bisection width (None for Gnp)
    algorithm: AlgorithmSpec
    graph_seed: int = 0

    @property
    def label(self) -> str:
        if self.family == "gbreg":
            instance = f"Gbreg({self.two_n},{self.width},{self.degree:g})"
        else:
            instance = f"Gnp({self.two_n},deg{self.degree:g})"
        return f"{instance}x{self.algorithm.describe()}"

    @property
    def graph_key(self) -> str:
        """Generator identity: cells sharing an instance share one graph."""
        model, params = self.generator_spec()
        inner = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{model}({inner})"

    def generator_spec(self) -> tuple[str, dict]:
        """The service generator spec (model, params) for this cell's graph."""
        if self.family == "gbreg":
            return "gbreg", {
                "vertices": self.two_n,
                "width": self.width,
                "degree": int(self.degree),
                "seed": self.graph_seed,
            }
        if self.family == "gnp":
            return "gnp", {
                "vertices": self.two_n,
                "p": gnp_probability_for_degree(self.two_n, self.degree),
                "seed": self.graph_seed,
            }
        raise ValueError(f"unknown study family {self.family!r}")

    def build_graph(self):
        """Build this cell's graph exactly as the service would."""
        from ..service.state import graph_from_generator_spec

        model, params = self.generator_spec()
        return graph_from_generator_spec(model, params)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "family": self.family,
            "two_n": self.two_n,
            "degree": self.degree,
            "width": self.width,
            "algorithm": self.algorithm.describe(),
            "graph_seed": self.graph_seed,
        }


@dataclass(frozen=True)
class StudyGrid:
    """A named sweep: cells plus the per-cell ensemble size."""

    name: str
    cells: tuple[StudyCell, ...]
    seeds_per_cell: int

    @property
    def total_runs(self) -> int:
        return len(self.cells) * self.seeds_per_cell


def algorithm_specs(
    names: tuple[str, ...], sa_size_factor: int = 2
) -> tuple[AlgorithmSpec, ...]:
    """Registry specs for study heuristic names (validated, SA sized)."""
    specs = []
    for name in names:
        info = algorithm_info(name)  # raises KeyError on unknown names
        if info.domain != "graph":
            raise ValueError(f"study algorithms must be graph-domain, got {name!r}")
        if name in ("sa", "csa"):
            specs.append(AlgorithmSpec.make(name, size_factor=sa_size_factor))
        else:
            specs.append(AlgorithmSpec.make(name))
    return tuple(specs)


def _gbreg_cells(
    two_n: int,
    width: int,
    degrees,
    specs: tuple[AlgorithmSpec, ...],
    graph_seed: int,
) -> list[StudyCell]:
    return [
        StudyCell(
            family="gbreg",
            two_n=two_n,
            degree=float(degree),
            width=parity_fixed_width(two_n, int(degree), width),
            algorithm=spec,
            graph_seed=graph_seed,
        )
        for degree in degrees
        for spec in specs
    ]


def _gnp_cells(
    two_n: int,
    degrees,
    specs: tuple[AlgorithmSpec, ...],
    graph_seed: int,
) -> list[StudyCell]:
    return [
        StudyCell(
            family="gnp",
            two_n=two_n,
            degree=float(degree),
            width=None,
            algorithm=spec,
            graph_seed=graph_seed,
        )
        for degree in degrees
        for spec in specs
    ]


def preset_grid(
    name: str,
    two_n: int | None = None,
    algorithms: tuple[str, ...] | None = None,
    seeds_per_cell: int | None = None,
    graph_seed: int = 0,
    sa_size_factor: int = 2,
) -> StudyGrid:
    """Build a named preset grid, with optional overrides.

    * ``quick`` — 2 cells × 20 seeds (one Gbreg, one Gnp); the CI
      study-smoke sweep and the test suite's end-to-end default.
    * ``phase-sweep`` — the planted-vs-random boundary study: Gbreg
      (width 8) and Gnp degree sweeps at 2n = 500, 100 seeds per cell.
    * ``heuristics`` — every study heuristic on one Gbreg(500, 16, 3)
      instance: cross-heuristic cut-size distributions, 100 seeds each.
    """
    if name == "quick":
        two_n = two_n or 120
        specs = algorithm_specs(algorithms or ("kl",), sa_size_factor)
        cells = _gbreg_cells(two_n, 4, (3,), specs[:1], graph_seed) + _gnp_cells(
            two_n, (2.0,), specs[:1], graph_seed
        )
        return StudyGrid(name, tuple(cells), seeds_per_cell or 20)
    if name == "phase-sweep":
        two_n = two_n or 500
        specs = algorithm_specs(algorithms or ("kl",), sa_size_factor)
        cells = _gbreg_cells(
            two_n, 8, STUDY_GBREG_DEGREES, specs, graph_seed
        ) + _gnp_cells(two_n, STUDY_GNP_DEGREES, specs, graph_seed)
        return StudyGrid(name, tuple(cells), seeds_per_cell or 100)
    if name == "heuristics":
        two_n = two_n or 500
        specs = algorithm_specs(
            algorithms or ("kl", "fm", "sa", "ckl", "csa"), sa_size_factor
        )
        cells = _gbreg_cells(two_n, 16, (3,), specs, graph_seed)
        return StudyGrid(name, tuple(cells), seeds_per_cell or 100)
    raise ValueError(f"unknown study preset {name!r} (known: {', '.join(PRESET_NAMES)})")


PRESET_NAMES = ("quick", "phase-sweep", "heuristics")
