"""ASCII dashboard for finished studies.

Renders a :class:`~repro.study.runner.StudyOutcome` as three blocks: the
per-cell distribution table (mean ± σ, q05/q50/q95, a sparkline of the
exact value counts, and the Weibull best-of-k extrapolation), the
phase-boundary report per family, and the run counters.  Pure string
formatting over the outcome's aggregates — rendering never re-touches
the engine or the service.
"""

from __future__ import annotations

from ..bench.ascii import sparkline
from ..bench.tables import render_generic_table
from .runner import StudyOutcome

__all__ = ["render_study"]


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _distribution_spark(stats) -> str:
    counts = stats.value_counts()
    if not counts:
        return ""
    lo, hi = min(counts), max(counts)
    if hi - lo > 60:  # keep the sparkline terminal-width friendly
        step = (hi - lo) // 60 + 1
        binned: dict[int, int] = {}
        for value, count in counts.items():
            binned[(value - lo) // step] = binned.get((value - lo) // step, 0) + count
        return sparkline([binned.get(i, 0) for i in range(max(binned) + 1)])
    return sparkline([counts.get(v, 0) for v in range(lo, hi + 1)])


def _cells_table(outcome: StudyOutcome) -> str:
    headers = (
        "cell", "runs", "mean", "std", "q05", "q50", "q95",
        "min", "max", "best@100", "dist",
    )
    rows = []
    for cell, stats in zip(outcome.grid.cells, outcome.cell_stats):
        summary = stats.summary()
        from ..obs.accumulator import best_of_k_extrapolation, fit_lower_tail

        fit = fit_lower_tail(stats)
        best100 = best_of_k_extrapolation(fit, ks=(100,))["k=100"] if fit else None
        rows.append(
            (
                cell.label,
                summary.get("count", 0),
                _fmt(summary.get("mean")),
                _fmt(summary.get("std")),
                _fmt(summary.get("q05"), 1),
                _fmt(summary.get("q50"), 1),
                _fmt(summary.get("q95"), 1),
                _fmt(summary.get("min"), 0),
                _fmt(summary.get("max"), 0),
                _fmt(best100, 1),
                _distribution_spark(stats),
            )
        )
    title = (
        f"study {outcome.grid.name!r} — {len(outcome.grid.cells)} cells × "
        f"{outcome.grid.seeds_per_cell} seeds ({outcome.mode})"
    )
    return render_generic_table(headers, rows, title=title)


def _phase_block(outcome: StudyOutcome) -> str:
    report = outcome.aggregates()["phase"]
    lines = ["phase boundaries"]
    for family, label in (("gbreg", "Gbreg q50/b"), ("gnp", "Gnp mean/2n")):
        for sweep in report[family]:
            curve = " ".join(f"{x:g}:{y:.2f}" for x, y in sweep["points"])
            boundary = sweep["boundary"]
            where = f"d* ≈ {boundary:.3f}" if boundary is not None else "no crossing"
            lines.append(
                f"  {label} [{sweep['algorithm']}] "
                f"(threshold {sweep['threshold']:g}): {where}   {curve}"
            )
    lines.append(
        f"  Gnp theoretical critical degree 2 ln 2 = "
        f"{report['gnp_critical_degree']:.3f}"
    )
    return "\n".join(lines)


def render_study(outcome: StudyOutcome) -> str:
    """The full dashboard for one finished study."""
    counters = (
        f"runs={outcome.grid.total_runs}  failed={outcome.failed_requests}  "
        f"cache_hits={outcome.cache_hits}  "
        f"engine_seconds={outcome.engine_seconds:.2f}"
    )
    return "\n\n".join([_cells_table(outcome), _phase_block(outcome), counters])
