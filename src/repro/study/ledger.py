"""Study ledgers: the standard run-ledger envelope plus a ``study`` section.

A study ledger is an ordinary observability ledger (run id, argv, env,
counter/histogram deltas, spans — see :mod:`repro.obs.ledger`) with
``kind`` set to ``"study"`` and the full per-cell aggregation attached
under ``"study"``.  It validates against the same ``obs/schema.json``
and lands content-addressed in the same ledger directory, so the
``repro-bisect stats`` tooling and the dashboard pick studies up like
any other run.
"""

from __future__ import annotations

from typing import Any

from ..obs.ledger import build_ledger
from .runner import StudyOutcome

__all__ = ["build_study_ledger"]


def build_study_ledger(
    run, outcome: StudyOutcome, argv: list[str] | None = None
) -> dict[str, Any]:
    """A schema-valid study ledger for a finished run context + outcome."""
    ledger = build_ledger(run, argv=argv)
    ledger["kind"] = "study"
    ledger["study"] = outcome.to_payload()
    return ledger
