"""Phase-boundary location over study degree sweeps.

Percus et al. (*The Peculiar Phase Structure of Random Graph Bisection*)
show random-graph bisection has a sharp phase boundary in mean degree:
below the critical point the minimum bisection width is essentially
zero, above it the width grows extensively.  For planted models the
analogue is the planted-vs-random transition: at low degree heuristics
find cuts *smaller* than the planted width (the planted bisection is
hidden in noise), at high degree the planted cut is the clear optimum.

Both are located the same way here: take a per-degree scalar off each
cell's cut-size distribution, then find where it crosses a threshold by
linear interpolation between the two bracketing sweep points.

* ``Gbreg(2n, b, d)`` — metric is ``q50 / b`` (median heuristic cut over
  the planted width).  Random-like phase: ratio well below 1; planted
  phase: ratio at (or above) 1.  Boundary: first upward crossing of
  :data:`GBREG_RATIO_THRESHOLD`.
* ``Gnp(2n, p)`` — metric is the mean cut *per vertex* (the heuristic
  proxy for the subextensive-to-extensive transition in the optimal
  width).  Boundary: first upward crossing of
  :data:`GNP_CUT_THRESHOLD`, to be compared against the theoretical
  critical mean degree ``2 ln 2``.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "GBREG_RATIO_THRESHOLD",
    "GNP_CRITICAL_DEGREE",
    "GNP_CUT_THRESHOLD",
    "locate_crossing",
    "phase_report",
]

#: Median-cut / planted-width ratio marking entry into the planted phase.
GBREG_RATIO_THRESHOLD = 0.99

#: Mean cut per vertex above which a ``Gnp`` ensemble no longer bisects
#: near-freely (size-normalized so the locator is scale-independent).
GNP_CUT_THRESHOLD = 0.01

#: Theoretical ``Gnp`` critical mean degree (Percus et al.): ``2 ln 2``.
GNP_CRITICAL_DEGREE = 2.0 * math.log(2.0)


def locate_crossing(
    points: list[tuple[float, float]], threshold: float
) -> float | None:
    """The x where sorted ``(x, y)`` points first cross up through ``threshold``.

    Linear interpolation between the bracketing points; a point exactly
    at the threshold counts as the crossing.  Returns ``None`` when the
    curve never reaches the threshold from below (fewer than two points,
    already above it at the start, or always below).
    """
    if len(points) < 2:
        return None
    points = sorted(points)
    if points[0][1] >= threshold:
        return None
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if y1 >= threshold:
            if y1 == y0:
                return x1
            return x0 + (threshold - y0) * (x1 - x0) / (y1 - y0)
    return None


def _sweep_entry(
    algorithm: str,
    points: list[tuple[float, float]],
    threshold: float,
    metric: str,
) -> dict[str, Any]:
    points = sorted(points)
    return {
        "algorithm": algorithm,
        "metric": metric,
        "threshold": threshold,
        "points": [[x, round(y, 9)] for x, y in points],
        "boundary": locate_crossing(points, threshold),
    }


def phase_report(cells, stats) -> dict[str, Any]:
    """Per-family, per-algorithm boundary locations for a finished study.

    ``cells`` and ``stats`` are the grid's cells and their matching
    :class:`~repro.obs.accumulator.StreamingStats`.  Sweeps with a single
    degree point report ``boundary: None`` (nothing to interpolate).
    """
    gbreg: dict[str, list[tuple[float, float]]] = {}
    gnp: dict[str, list[tuple[float, float]]] = {}
    for cell, acc in zip(cells, stats):
        if acc.count == 0:
            continue
        name = cell.algorithm.describe()
        if cell.family == "gbreg" and cell.width:
            gbreg.setdefault(name, []).append(
                (cell.degree, acc.quantile(0.5) / cell.width)
            )
        elif cell.family == "gnp":
            gnp.setdefault(name, []).append((cell.degree, acc.mean / cell.two_n))
    return {
        "gbreg": [
            _sweep_entry(name, points, GBREG_RATIO_THRESHOLD, "q50/planted_width")
            for name, points in sorted(gbreg.items())
        ],
        "gnp": [
            _sweep_entry(name, points, GNP_CUT_THRESHOLD, "mean_cut_per_vertex")
            for name, points in sorted(gnp.items())
        ],
        "gnp_critical_degree": round(GNP_CRITICAL_DEGREE, 9),
    }
