"""Ensemble-scale studies: cut-size distributions over seed sweeps.

The ``repro-bisect study`` subsystem.  A study runs a grid of
(graph family × size × degree × width) × heuristic cells, each over
hundreds of seeds, through the engine batch path (or a live service),
folds every cell into a streaming distribution summary, locates phase
boundaries over degree sweeps, and records everything in a
content-addressed study ledger.
"""

from .dashboard import render_study
from .grid import PRESET_NAMES, StudyCell, StudyGrid, preset_grid
from .ledger import build_study_ledger
from .phase import locate_crossing, phase_report
from .runner import StudyOutcome, cell_seeds, run_study_local, run_study_remote

__all__ = [
    "PRESET_NAMES",
    "StudyCell",
    "StudyGrid",
    "StudyOutcome",
    "build_study_ledger",
    "cell_seeds",
    "locate_crossing",
    "phase_report",
    "preset_grid",
    "render_study",
    "run_study_local",
    "run_study_remote",
]
