"""Study execution: the local engine batch path and the remote service mode.

Both runners produce the same :class:`StudyOutcome` from the same
deterministic seed protocol, so a ``--remote`` study against a live
``repro-bisect serve`` must reproduce the local aggregates exactly:

* Graphs are built from generator specs through the service's own
  :func:`~repro.service.state.graph_from_generator_spec` (locally) or by
  the server from the identical spec (remotely) — same bits, same
  fingerprint, same engine cache identity.
* Heuristic seeds come from :func:`cell_seeds`, a pure function of
  ``(master_seed, cell_index, count)`` — independent of sweep size,
  submission order, and client count.
* Aggregation uses :class:`~repro.obs.accumulator.StreamingStats` in its
  exact regime, whose summaries are permutation and shard invariant, so
  out-of-order remote completion cannot change the result.

The remote runner doubles as the standing load/soak test: N worker
threads, one :class:`~repro.service.client.ServiceClient` each, draining
a shared work queue of (cell, seed) pairs against the service's job API.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..engine.executor import Engine
from ..engine.job import Job
from ..obs.accumulator import (
    StreamingStats,
    best_of_k_extrapolation,
    fit_lower_tail,
)
from ..rng import LaggedFibonacciRandom, derive_seed
from .grid import StudyGrid
from .phase import phase_report

__all__ = ["StudyOutcome", "cell_seeds", "run_study_local", "run_study_remote"]


def cell_seeds(master_seed: int, cell_index: int, count: int) -> list[int]:
    """The heuristic seeds for one cell — pure in all three arguments.

    Two-level derivation: the master stream yields a per-cell base seed
    (salted by the cell index, so cells are independent), and the cell
    stream yields one seed per run.  Growing ``count`` extends a cell's
    list without changing its prefix, and no cell's seeds depend on how
    many cells the grid has.
    """
    base = derive_seed(LaggedFibonacciRandom(master_seed), cell_index)
    child = LaggedFibonacciRandom(base)
    return [derive_seed(child, index) for index in range(count)]


@dataclass
class StudyOutcome:
    """A finished study: the grid, per-cell accumulators, and run counters."""

    grid: StudyGrid
    master_seed: int
    mode: str  # "local" | "remote"
    cell_stats: tuple[StreamingStats, ...]
    failed_requests: int = 0
    cache_hits: int = 0
    engine_seconds: float = 0.0  # sum of per-job engine timings, not wall clock

    def aggregates(self) -> dict[str, Any]:
        """The deterministic part of the payload: identical local vs remote."""
        cells = []
        for cell, stats in zip(self.grid.cells, self.cell_stats):
            fit = fit_lower_tail(stats)
            cells.append(
                {
                    **cell.to_dict(),
                    "stats": stats.summary(),
                    "tail_fit": fit.to_dict() if fit else None,
                    "best_of_k": best_of_k_extrapolation(fit) if fit else None,
                }
            )
        return {
            "preset": self.grid.name,
            "master_seed": self.master_seed,
            "seeds_per_cell": self.grid.seeds_per_cell,
            "cells": cells,
            "phase": phase_report(self.grid.cells, self.cell_stats),
        }

    def to_payload(self) -> dict[str, Any]:
        """The full ``study`` ledger section (aggregates + run counters)."""
        return {
            **self.aggregates(),
            "mode": self.mode,
            "failed_requests": self.failed_requests,
            "cache_hits": self.cache_hits,
            "engine_seconds": round(self.engine_seconds, 6),
        }


# -- local mode --------------------------------------------------------------------


def run_study_local(
    grid: StudyGrid, master_seed: int = 0, engine: Engine | None = None
) -> StudyOutcome:
    """Run every (cell, seed) job through the engine batch path.

    One :class:`~repro.engine.job.Job` per heuristic run, tagged with its
    cell index; graphs are built once per distinct generator spec and
    shared across cells.  A failed job raises — a study with silently
    missing runs would report a biased distribution.
    """
    engine = engine if engine is not None else Engine(jobs=1)
    graphs: dict[str, Any] = {}
    for cell in grid.cells:
        if cell.graph_key not in graphs:
            graphs[cell.graph_key] = cell.build_graph()
    jobs = [
        Job(
            graph_key=cell.graph_key,
            algorithm=cell.algorithm,
            seed=seed,
            tags=(("cell", index),),
        )
        for index, cell in enumerate(grid.cells)
        for seed in cell_seeds(master_seed, index, grid.seeds_per_cell)
    ]
    results = engine.run(jobs, graphs)
    stats = tuple(StreamingStats() for _ in grid.cells)
    cache_hits = 0
    seconds = 0.0
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"study job {result.job_id!r} failed: {result.error}"
            )
        stats[result.tag("cell")].add(result.cut)
        cache_hits += 1 if result.from_cache else 0
        seconds += result.seconds
    return StudyOutcome(
        grid=grid,
        master_seed=master_seed,
        mode="local",
        cell_stats=stats,
        cache_hits=cache_hits,
        engine_seconds=seconds,
    )


# -- remote mode -------------------------------------------------------------------


def _drain_remote(
    client,
    work: deque,
    graph_ids: dict[str, str],
    grid: StudyGrid,
    stats: list[StreamingStats],
    counters: dict[str, int | float],
    lock: threading.Lock,
    job_timeout: float,
) -> None:
    """One worker thread: pull (cell, seed) pairs, submit, wait, accumulate."""
    from ..service.client import ServiceClientError

    while True:
        try:
            cell_index, seed = work.popleft()  # thread-safe; raises when dry
        except IndexError:
            return
        cell = grid.cells[cell_index]
        # Any per-item failure — transport error, timeout, or a malformed
        # payload (missing keys, non-numeric cut) — must land in
        # counters["failed"]: a dead worker thread would silently drop
        # every item it had claimed and bias the distribution.
        try:
            spec = cell.algorithm
            records = client.submit(
                graph_ids[cell.graph_key],
                spec.name,
                params=spec.params_dict() or None,
                seeds=[seed],
            )
            status = client.wait(records[0]["id"], timeout=job_timeout)
            result = status.get("result") or {}
            ok = status["state"] == "done" and result.get("status") == "ok"
            cut = int(result["cut"]) if ok else 0
            cached = bool(result.get("from_cache"))
            seconds = float(result.get("seconds") or 0.0)
        except (ServiceClientError, TimeoutError, LookupError, TypeError, ValueError):
            ok = False
        with lock:
            if ok:
                stats[cell_index].add(cut)
                counters["cache_hits"] += 1 if cached else 0
                counters["engine_seconds"] += seconds
            else:
                counters["failed"] += 1


def run_study_remote(
    grid: StudyGrid,
    master_seed: int = 0,
    base_url: str = "http://127.0.0.1:8080",
    clients: int = 8,
    api_key: str | None = None,
    job_timeout: float = 120.0,
) -> StudyOutcome:
    """Run the study against a live service — the standing load test.

    ``clients`` worker threads each own a
    :class:`~repro.service.client.ServiceClient` and drain a shared queue
    of (cell, seed) pairs.  Failed or timed-out requests are counted (not
    raised): a soak test reports degradation, it does not abort on it.
    """
    from ..service.client import ServiceClient

    setup = ServiceClient(base_url, api_key=api_key)
    graph_ids: dict[str, str] = {}
    for cell in grid.cells:
        if cell.graph_key not in graph_ids:
            model, params = cell.generator_spec()
            graph_ids[cell.graph_key] = setup.generate_graph(model, **params)["id"]

    work: deque = deque(
        (index, seed)
        for index, _ in enumerate(grid.cells)
        for seed in cell_seeds(master_seed, index, grid.seeds_per_cell)
    )
    stats = [StreamingStats() for _ in grid.cells]
    counters: dict[str, int | float] = {
        "failed": 0, "cache_hits": 0, "engine_seconds": 0.0,
    }
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_drain_remote,
            args=(
                ServiceClient(base_url, api_key=api_key, timeout=job_timeout),
                work,
                graph_ids,
                grid,
                stats,
                counters,
                lock,
                job_timeout,
            ),
            name=f"study-client-{index}",
            daemon=True,
        )
        for index in range(max(1, clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return StudyOutcome(
        grid=grid,
        master_seed=master_seed,
        mode="remote",
        cell_stats=tuple(stats),
        failed_requests=int(counters["failed"]),
        cache_hits=int(counters["cache_hits"]),
        engine_seconds=float(counters["engine_seconds"]),
    )
