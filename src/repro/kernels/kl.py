"""KL pair-selection kernels over the CSR arrays (packed integer keys).

Heap entries are single ints: ``key = (B - gain) * n + rank``, where B is
the graph's maximum weighted degree (a bound on |gain| at all times) and
rank orders ids by label.  Ascending int order is exactly ascending
``(-gain, label)`` tuple order, so pops agree with the dict kernel entry
for entry — at one machine-int comparison per sift instead of a tuple
compare.

Selection only has to *return* the same pair as the dict kernel, not pop
the same entries: the chosen pair is a pure function of the current
gains/locked state (argmax in (gain desc, label asc) scan order with
strict improvement), and stale heap entries are inert until discarded.
That freedom lets these kernels check the ``g_ab <= g_a + g_b`` bound
*before* pulling another candidate, so on sparse graphs — where the two
top candidates are usually not adjacent and therefore already optimal —
a selection costs exactly two pops and one adjacency probe.

Two batch-level refinements over the previous in-module kernels:

* a ``curkey`` freshness array — ``curkey[v]`` is v's only live packed
  key (or -1 once locked), making the staleness test one list index and
  one int compare instead of a lock probe plus a gain recompute with an
  integer division;
* an allocation-free fast path for the two-pop selection (the common
  case the ``prune_hits`` counter measures): when the two top candidates
  are not adjacent, the pair is emitted without materializing candidate
  lists or touching the pending queues.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from ..graphs.csr import CSRGraph

__all__ = ["kl_sequence_multi", "kl_sequence_single"]


def _accumulate(stats: dict, selections: int, stale: int, candidates: int,
                prune_hits: int) -> None:
    stats["selections"] = stats.get("selections", 0) + selections
    stats["stale_pops"] = stats.get("stale_pops", 0) + stale
    stats["candidates"] = stats.get("candidates", 0) + candidates
    stats["prune_hits"] = stats.get("prune_hits", 0) + prune_hits


def kl_sequence_single(
    csr: CSRGraph, sides: list[int], gains: list[int], stats: dict | None = None
):
    """Pair sequence for the single-weight-class case, fully inlined."""
    n = csr.num_vertices
    rank = csr.rank
    by_rank = csr.by_rank
    nbrs = csr.neighbor_lists()
    unit = csr.unit_edge_weights
    wts = None if unit else csr.weight_lists()
    adj_maps = csr.adjacency_maps()
    B = csr.max_weighted_degree

    curkey = [(B - gains[i]) * n + rank[i] for i in range(n)]
    heap0: list[int] = []
    heap1: list[int] = []
    for i in range(n):
        (heap1 if sides[i] else heap0).append(curkey[i])
    heap0.sort()  # a sorted list is a valid heap; cheaper than n sifts
    heap1.sort()
    pend0: deque = deque()
    pend1: deque = deque()

    locked = bytearray(n)
    sequence: list[tuple[int, int, int]] = []  # (a, b, pair_gain)
    push = heappush
    pop = heappop
    stale = 0  # obs only: superseded entries discarded on the slow path
    candidates = 0
    prune_hits = 0

    while True:
        # Top unlocked, non-stale candidate on each side (heap/pending merge).
        while True:
            if pend0:
                ak = pop(heap0) if heap0 and heap0[0] < pend0[0] else pend0.popleft()
            elif heap0:
                ak = pop(heap0)
            else:
                ak = -1
                break
            va = by_rank[ak % n]
            if curkey[va] == ak:
                break
            stale += 1
        if ak < 0:
            break
        while True:
            if pend1:
                bk = pop(heap1) if heap1 and heap1[0] < pend1[0] else pend1.popleft()
            elif heap1:
                bk = pop(heap1)
            else:
                bk = -1
                break
            vb = by_rank[bk % n]
            if curkey[vb] == bk:
                break
            stale += 1
        if bk < 0:
            pend0.appendleft(ak)
            break

        adj_va = adj_maps[va]
        w_ab = adj_va.get(vb, 0)
        if not w_ab:
            # Non-adjacent tops: g_ab == g_a + g_b is already the upper
            # bound for every other pair, so this selection is settled by
            # the two pops alone — no candidate lists, no parking.
            candidates += 2
            prune_hits += 1
            best_gain = (B - ak // n) + (B - bk // n)
            a = va
            b = vb
        else:
            gain_a = B - ak // n
            top_b_gain = B - bk // n
            best_gain = gain_a + top_b_gain - 2 * w_ab
            best_ak, best_bk = ak, bk
            a_keys = [ak]
            b_keys = [bk]

            # Top pair is adjacent: scan in (g_a desc, g_b desc) order until
            # the g_a + g_b upper bound can no longer beat the best pair.
            i = 0
            while True:
                if i == len(a_keys):
                    if B - a_keys[-1] // n + top_b_gain <= best_gain:
                        break
                    while True:  # pull the next a candidate
                        if pend0:
                            ak = (
                                pop(heap0)
                                if heap0 and heap0[0] < pend0[0]
                                else pend0.popleft()
                            )
                        elif heap0:
                            ak = pop(heap0)
                        else:
                            ak = -1
                            break
                        if curkey[by_rank[ak % n]] == ak:
                            break
                        stale += 1
                    if ak < 0:
                        break
                    a_keys.append(ak)
                ak = a_keys[i]
                gain_a = B - ak // n
                if gain_a + top_b_gain <= best_gain:
                    break
                adj_a = adj_maps[by_rank[ak % n]]
                j = 0
                while True:
                    if j == len(b_keys):
                        if gain_a + (B - b_keys[-1] // n) <= best_gain:
                            break
                        while True:  # pull the next b candidate
                            if pend1:
                                bk = (
                                    pop(heap1)
                                    if heap1 and heap1[0] < pend1[0]
                                    else pend1.popleft()
                                )
                            elif heap1:
                                bk = pop(heap1)
                            else:
                                bk = -1
                                break
                            if curkey[by_rank[bk % n]] == bk:
                                break
                            stale += 1
                        if bk < 0:
                            break
                        b_keys.append(bk)
                    bk = b_keys[j]
                    upper = gain_a + B - bk // n
                    if upper <= best_gain:
                        break
                    pair_gain = upper - 2 * adj_a.get(by_rank[bk % n], 0)
                    if pair_gain > best_gain:
                        best_gain, best_ak, best_bk = pair_gain, ak, bk
                    j += 1
                i += 1

            candidates += len(a_keys) + len(b_keys)
            if len(a_keys) + len(b_keys) == 2:
                prune_hits += 1
            if len(a_keys) > 1 or a_keys[0] != best_ak:
                pend0.extendleft(k for k in reversed(a_keys) if k != best_ak)
            if len(b_keys) > 1 or b_keys[0] != best_bk:
                pend1.extendleft(k for k in reversed(b_keys) if k != best_bk)

            a = by_rank[best_ak % n]
            b = by_rank[best_bk % n]

        locked[a] = locked[b] = 1
        curkey[a] = curkey[b] = -1
        sequence.append((a, b, best_gain))

        for moved in (a, b):
            side_moved = sides[moved]
            row = nbrs[moved]
            if unit:
                for u in row:
                    if locked[u]:
                        continue
                    g = gains[u] + (2 if sides[u] == side_moved else -2)
                    gains[u] = g
                    key = (B - g) * n + rank[u]
                    curkey[u] = key
                    push(heap1 if sides[u] else heap0, key)
            else:
                wrow = wts[moved]
                for slot, u in enumerate(row):
                    if locked[u]:
                        continue
                    w2 = 2 * wrow[slot]
                    g = gains[u] + (w2 if sides[u] == side_moved else -w2)
                    gains[u] = g
                    key = (B - g) * n + rank[u]
                    curkey[u] = key
                    push(heap1 if sides[u] else heap0, key)

    if stats is not None:
        _accumulate(stats, len(sequence), stale, candidates, prune_hits)
    return sequence


class _SelectState:
    __slots__ = ("heaps", "pending")

    def __init__(self) -> None:
        self.heaps: tuple[list[int], list[int]] = ([], [])
        self.pending: tuple[deque, deque] = (deque(), deque())


def kl_sequence_multi(
    csr: CSRGraph, sides: list[int], gains: list[int], stats: dict | None = None
):
    """Pair sequence with per-vertex-weight classes (contracted graphs)."""
    n = csr.num_vertices
    rank = csr.rank
    by_rank = csr.by_rank
    nbrs = csr.neighbor_lists()
    unit = csr.unit_edge_weights
    wts = None if unit else csr.weight_lists()
    adj_maps = csr.adjacency_maps()
    vweights = csr.vertex_weight_list()
    B = csr.max_weighted_degree

    states: dict[int, _SelectState] = {}
    for i in range(n):
        state = states.setdefault(vweights[i], _SelectState())
        state.heaps[sides[i]].append((B - gains[i]) * n + rank[i])
    for state in states.values():
        state.heaps[0].sort()
        state.heaps[1].sort()

    locked = bytearray(n)
    sequence: list[tuple[int, int, int]] = []
    stale = 0  # obs only, as in the single-class kernel
    candidates = 0
    prune_hits = 0

    def next_key(state: _SelectState, side: int) -> int:
        """Next unlocked, non-stale packed key on ``side``, or -1."""
        nonlocal stale
        heap = state.heaps[side]
        pend = state.pending[side]
        while True:
            if pend:
                key = heappop(heap) if heap and heap[0] < pend[0] else pend.popleft()
            elif heap:
                key = heappop(heap)
            else:
                return -1
            v = by_rank[key % n]
            if not locked[v] and gains[v] == B - key // n:
                return key
            stale += 1

    def select_pair(state: _SelectState):
        nonlocal candidates, prune_hits
        ak = next_key(state, 0)
        if ak < 0:
            return None
        bk = next_key(state, 1)
        if bk < 0:
            state.pending[0].appendleft(ak)
            candidates += 1
            return None

        gain_a = B - ak // n
        top_b_gain = B - bk // n
        best_gain = gain_a + top_b_gain - 2 * adj_maps[by_rank[ak % n]].get(
            by_rank[bk % n], 0
        )
        best_ak, best_bk = ak, bk
        a_keys = [ak]
        b_keys = [bk]

        if best_gain < gain_a + top_b_gain:
            i = 0
            while True:
                if i == len(a_keys):
                    if B - a_keys[-1] // n + top_b_gain <= best_gain:
                        break
                    ak = next_key(state, 0)
                    if ak < 0:
                        break
                    a_keys.append(ak)
                ak = a_keys[i]
                gain_a = B - ak // n
                if gain_a + top_b_gain <= best_gain:
                    break
                adj_a = adj_maps[by_rank[ak % n]]
                j = 0
                while True:
                    if j == len(b_keys):
                        if gain_a + (B - b_keys[-1] // n) <= best_gain:
                            break
                        bk = next_key(state, 1)
                        if bk < 0:
                            break
                        b_keys.append(bk)
                    bk = b_keys[j]
                    upper = gain_a + B - bk // n
                    if upper <= best_gain:
                        break
                    pair_gain = upper - 2 * adj_a.get(by_rank[bk % n], 0)
                    if pair_gain > best_gain:
                        best_gain, best_ak, best_bk = pair_gain, ak, bk
                    j += 1
                i += 1

        candidates += len(a_keys) + len(b_keys)
        if len(a_keys) + len(b_keys) == 2:
            prune_hits += 1
        state.pending[0].extendleft(k for k in reversed(a_keys) if k != best_ak)
        state.pending[1].extendleft(k for k in reversed(b_keys) if k != best_bk)
        return best_gain, best_ak, best_bk

    while True:
        best = None  # (gain, a_key, b_key, state)
        for state in states.values():
            selected = select_pair(state)
            if selected is None:
                continue
            gain, ak, bk = selected
            if best is None or gain > best[0]:
                if best is not None:
                    # Un-choose the previous class's pair: push its pair back.
                    _, pak, pbk, pstate = best
                    heappush(pstate.heaps[0], pak)
                    heappush(pstate.heaps[1], pbk)
                best = (gain, ak, bk, state)
            else:
                heappush(state.heaps[0], ak)
                heappush(state.heaps[1], bk)
        if best is None:
            break

        gain, ak, bk, _state = best
        a = by_rank[ak % n]
        b = by_rank[bk % n]
        locked[a] = locked[b] = 1
        sequence.append((a, b, gain))

        for moved in (a, b):
            side_moved = sides[moved]
            row = nbrs[moved]
            if unit:
                for u in row:
                    if locked[u]:
                        continue
                    g = gains[u] + (2 if sides[u] == side_moved else -2)
                    gains[u] = g
                    heappush(
                        states[vweights[u]].heaps[sides[u]], (B - g) * n + rank[u]
                    )
            else:
                wrow = wts[moved]
                for slot, u in enumerate(row):
                    if locked[u]:
                        continue
                    w2 = 2 * wrow[slot]
                    g = gains[u] + (w2 if sides[u] == side_moved else -w2)
                    gains[u] = g
                    heappush(
                        states[vweights[u]].heaps[sides[u]], (B - g) * n + rank[u]
                    )

    if stats is not None:
        _accumulate(stats, len(sequence), stale, candidates, prune_hits)
    return sequence
