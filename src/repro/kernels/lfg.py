"""Bulk generation for the lagged-Fibonacci stream (x[n] = x[n-24] + x[n-55]).

The SA flip sweep consumes one raw 64-bit value per index draw (plus one
per uphill move), millions per run.  Drawing them through
:class:`~repro.rng.LaggedFibonacciRandom` costs a ring-buffer store and
wrap check per value even when inlined; generating them in *blocks* ahead
of the walk amortizes that to a C-level list comprehension (or a numpy
vector add) per 24 values.

The block values are exactly the values the generator would produce —
the recurrence is a pure function of the last 55 outputs — and
:func:`restore_state` writes the generator's ring table/index to the
state it would have reached after consuming ``total`` values, so code
running after the sweep (``rebalance`` draws, a second algorithm on the
same rng) sees an indistinguishable generator.
"""

from __future__ import annotations

from ..rng import LaggedFibonacciRandom

__all__ = [
    "fill_block",
    "fill_block_numpy",
    "history",
    "restore_state",
]

_MASK = (1 << 64) - 1


def history(rng: LaggedFibonacciRandom) -> list[int]:
    """The generator's last 55 outputs, oldest first.

    ``rng._table[rng._index]`` is the slot about to be overwritten — the
    oldest live value — so reading the ring forward from ``_index`` yields
    the outputs in generation order.
    """
    table = rng._table
    idx = rng._index
    return [table[(idx + k) % 55] for k in range(55)]


def fill_block(hist: list[int], count: int) -> tuple[list[int], list[int]]:
    """Generate ``>= count`` next stream values from ``hist`` (55, oldest first).

    Returns ``(values, new_hist)`` where ``new_hist`` is the trailing 55
    values ready for the next call.  Values come in chunks of 24 — the
    short lag — because within a chunk every output depends only on
    values already in ``hist``, which makes the chunk one zip/listcomp.
    """
    h = hist
    out: list[int] = []
    while len(out) < count:
        # x[n] = x[n-24] + x[n-55]: h[31:] supplies the 24-lag operands,
        # h[:24] the 55-lag operands (zip stops at the shorter side).
        chunk = [(a + b) & _MASK for a, b in zip(h[31:], h)]
        out += chunk
        h = h[24:] + chunk
    return out, h


def fill_block_numpy(hist: list[int], count: int) -> tuple[list[int], list[int]]:
    """:func:`fill_block` with the chunk recurrence run as numpy uint64 adds.

    uint64 addition wraps mod 2**64, which *is* the recurrence; the result
    list contains the identical integers.  Returns plain Python lists so
    the scalar sweep indexes unboxed ints exactly as in the array path.
    """
    import numpy as np

    rounds = -(-count // 24)
    buf = np.empty(55 + rounds * 24, dtype=np.uint64)
    buf[:55] = hist
    pos = 55
    for _ in range(rounds):
        buf[pos : pos + 24] = buf[pos - 24 : pos] + buf[pos - 55 : pos - 31]
        pos += 24
    values = buf[55:pos].tolist()
    return values, buf[pos - 55 : pos].tolist()


def restore_state(
    rng: LaggedFibonacciRandom, idx0: int, total: int, window: list[int]
) -> None:
    """Advance ``rng`` to the state after consuming ``total`` stream values.

    ``idx0`` is ``rng._index`` at the moment :func:`history` was taken and
    ``window`` holds the last ``min(total, 55)`` *consumed* values in
    order.  Ring slot ``(idx0 + m) % 55`` carries stream value ``m``;
    slots older than the window still hold their pre-sweep values, which
    are exactly stream values ``m < 0`` — already correct.
    """
    if total <= 0:
        return
    table = rng._table
    start = total - len(window)
    for k, value in enumerate(window):
        table[(idx0 + start + k) % 55] = value
    rng._index = (idx0 + total) % 55
