"""The SA flip-neighborhood Metropolis sweep over the CSR arrays.

This is the hottest loop in the package (~1e6 attempted moves per run at
2n=5000).  Three layers of batching keep it decision-identical to the
dict walk in :mod:`repro.partition.annealing.sa` while removing per-move
overhead:

* **Buffered RNG stream.**  When the generator is our lagged Fibonacci,
  raw 64-bit values are produced in blocks (:mod:`repro.kernels.lfg`)
  instead of through the ring buffer per draw; the generator state is
  restored exactly afterwards.  Index draws use the same shift/reject
  scheme as ``_randbelow``; the uniform draw compares the raw 53-bit
  mantissa against ``exp(-delta/T) * 2**53`` — multiplying both sides of
  ``(value >> 11) * 2**-53 >= exp(...)`` by the power of two is exact in
  IEEE double arithmetic, so the comparison is bitwise the dict path's.
* **Per-side penalty precompute.**  On unit-vertex-weight graphs the
  imbalance penalty of a flip depends only on the mover's side:
  ``alpha * ((diff -+ 2)**2 - diff**2)`` collapses to one of two floats
  recomputed per accepted move — the same product of ``alpha`` with the
  same integer, hence the same float, as the dict path's expression.
* **Per-temperature exp memo.**  ``math.exp`` is deterministic, so the
  acceptance threshold for a given uphill delta is cached per
  temperature (``delta`` values repeat heavily: gains are small ints).
  ``math.exp`` is always the decision source — never ``np.exp``, which
  is not guaranteed bit-identical.

The generic sweep (non-lagged-Fibonacci generators) keeps the previous
inline path, consuming identical ``_randbelow``/``random`` draws.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..graphs.csr import CSRGraph
from ..rng import LaggedFibonacciRandom
from . import gains as gain_kernels
from .lfg import fill_block, fill_block_numpy, history, restore_state

__all__ = ["FlipWalk", "flip_walk"]

_BLOCK = 4096
_TWO53 = 9007199254740992.0


@dataclass
class FlipWalk:
    """Raw outcome of the Metropolis sweep (id-indexed; no label types).

    ``best_sides`` is ``None`` when the walk never visited a balanced
    state; ``sides`` is the final (possibly unbalanced) configuration the
    caller can repair.
    """

    sides: list[int]
    best_sides: list[int] | None
    cut: int
    attempted: int
    accepted: int
    temperatures: int
    final_temperature: float
    trace: list[tuple[float, float, int]] = field(default_factory=list)


def flip_walk(
    csr: CSRGraph,
    sides: list[int],
    cut: int,
    diff: int,
    temperature: float,
    rng: random.Random,
    schedule,
    alpha: float,
    balance_tolerance: int,
    record_trace: bool,
    backend: str,
) -> FlipWalk:
    """Run the annealing flip walk to freezing; mutates and returns ``sides``."""
    if type(rng) is LaggedFibonacciRandom:
        return _flip_walk_buffered(
            csr, sides, cut, diff, temperature, rng, schedule, alpha,
            balance_tolerance, record_trace, backend,
        )
    return _flip_walk_generic(
        csr, sides, cut, diff, temperature, rng, schedule, alpha,
        balance_tolerance, record_trace, backend,
    )


def _flip_walk_buffered(
    csr: CSRGraph,
    sides: list[int],
    cut: int,
    diff: int,
    temperature: float,
    rng: LaggedFibonacciRandom,
    schedule,
    alpha: float,
    balance_tolerance: int,
    record_trace: bool,
    backend: str,
) -> FlipWalk:
    n = csr.num_vertices
    nbrs = csr.neighbor_lists()
    wts = None if csr.unit_edge_weights else csr.weight_lists()
    vweights = csr.vertex_weight_list()
    unit_vw = csr.unit_vertex_weights

    best_cut = cut if abs(diff) <= balance_tolerance else None
    best_sides = sides.copy() if best_cut is not None else None

    moves_per_temp = schedule.moves_per_temperature(n)
    cutoff = schedule.acceptance_cutoff(n)
    if cutoff is None:
        cutoff = moves_per_temp + 1  # sentinel: never reached

    attempted = accepted = 0
    temperatures = 0
    stale = 0
    trace: list[tuple[float, float, int]] = []

    exp = math.exp
    kbits = n.bit_length()
    shift = 64 - kbits

    fill = fill_block_numpy if backend == "numpy" else fill_block
    idx0 = rng._index
    hist = history(rng)
    buf: list[int] = []
    blen = 0
    p = 0
    consumed = 0  # values consumed before the current block
    prev_tail: list[int] = []  # last 55 values of the previous block

    def refill() -> None:
        nonlocal buf, blen, p, hist, consumed, prev_tail
        consumed += p
        if blen:
            prev_tail = buf[-55:]
        buf, hist = fill(hist, _BLOCK)
        blen = len(buf)
        p = 0

    refill()

    cdelta = [-g for g in gain_kernels.move_gains(csr, sides, backend)]

    d4 = 4 * diff
    pens = (alpha * (4 - d4), alpha * (4 + d4))

    while not schedule.is_frozen(stale, temperature):
        if temperatures >= schedule.max_temperatures:
            break
        accepted_here = 0
        attempted_here = 0
        improved_best = False
        memo: dict[float, float] = {}
        memo_get = memo.get
        if unit_vw:
            for _ in range(moves_per_temp):
                if accepted_here >= cutoff:
                    break  # Johnson's cutoff: this temperature equilibrated
                attempted_here += 1
                while True:  # rejection-sample an index, as _randbelow does
                    if p >= blen:
                        refill()
                    value = buf[p]
                    p += 1
                    i = value >> shift
                    if i < n:
                        break
                delta = cdelta[i] + pens[sides[i]]
                if delta > 0:
                    if p >= blen:
                        refill()
                    u53 = buf[p] >> 11
                    p += 1
                    thr = memo_get(delta)
                    if thr is None:
                        thr = exp(-delta / temperature) * _TWO53
                        memo[delta] = thr
                    if u53 >= thr:
                        continue
                side_v = sides[i]
                sides[i] = 1 - side_v
                cut_delta = cdelta[i]
                cut += cut_delta
                diff = diff - 2 if side_v == 0 else diff + 2
                d4 = 4 * diff
                pens = (alpha * (4 - d4), alpha * (4 + d4))
                accepted_here += 1
                cdelta[i] = -cut_delta
                row = nbrs[i]
                if wts is None:
                    for u in row:
                        cdelta[u] += -2 if sides[u] == side_v else 2
                else:
                    wrow = wts[i]
                    for slot, u in enumerate(row):
                        w2 = 2 * wrow[slot]
                        cdelta[u] += -w2 if sides[u] == side_v else w2
                if abs(diff) <= balance_tolerance and (
                    best_cut is None or cut < best_cut
                ):
                    best_cut = cut
                    best_sides = sides.copy()
                    improved_best = True
        else:
            for _ in range(moves_per_temp):
                if accepted_here >= cutoff:
                    break
                attempted_here += 1
                while True:
                    if p >= blen:
                        refill()
                    value = buf[p]
                    p += 1
                    i = value >> shift
                    if i < n:
                        break
                side_v = sides[i]
                cut_delta = cdelta[i]
                wv = vweights[i]
                new_diff = diff - 2 * wv if side_v == 0 else diff + 2 * wv
                delta = cut_delta + alpha * (new_diff * new_diff - diff * diff)
                if delta > 0:
                    if p >= blen:
                        refill()
                    u53 = buf[p] >> 11
                    p += 1
                    thr = memo_get(delta)
                    if thr is None:
                        thr = exp(-delta / temperature) * _TWO53
                        memo[delta] = thr
                    if u53 >= thr:
                        continue
                sides[i] = 1 - side_v
                cut += cut_delta
                diff = new_diff
                accepted_here += 1
                cdelta[i] = -cut_delta
                row = nbrs[i]
                if wts is None:
                    for u in row:
                        cdelta[u] += -2 if sides[u] == side_v else 2
                else:
                    wrow = wts[i]
                    for slot, u in enumerate(row):
                        w2 = 2 * wrow[slot]
                        cdelta[u] += -w2 if sides[u] == side_v else w2
                if abs(diff) <= balance_tolerance and (
                    best_cut is None or cut < best_cut
                ):
                    best_cut = cut
                    best_sides = sides.copy()
                    improved_best = True
        attempted += attempted_here
        accepted += accepted_here
        ratio = accepted_here / attempted_here if attempted_here else 0.0
        if record_trace:
            trace.append((temperature, ratio, cut))
        temperatures += 1
        if ratio < schedule.min_acceptance and not improved_best:
            stale += 1
        else:
            stale = 0
        temperature = schedule.next_temperature(temperature)

    total = consumed + p
    if p >= 55:
        window = buf[p - 55 : p]
    elif consumed == 0:
        window = buf[:p]
    else:
        window = prev_tail[p:] + buf[:p]
    restore_state(rng, idx0, total, window)

    return FlipWalk(
        sides=sides,
        best_sides=best_sides,
        cut=cut,
        attempted=attempted,
        accepted=accepted,
        temperatures=temperatures,
        final_temperature=temperature,
        trace=trace,
    )


def _flip_walk_generic(
    csr: CSRGraph,
    sides: list[int],
    cut: int,
    diff: int,
    temperature: float,
    rng: random.Random,
    schedule,
    alpha: float,
    balance_tolerance: int,
    record_trace: bool,
    backend: str,
) -> FlipWalk:
    """The sweep for arbitrary generators (``random.Random`` et al.).

    Consumes ``rng._randbelow``/``rng.random`` exactly as the dict walk
    does; only the state representation (id lists vs label dicts)
    differs.
    """
    n = csr.num_vertices
    nbrs = csr.neighbor_lists()
    wts = None if csr.unit_edge_weights else csr.weight_lists()
    vweights = csr.vertex_weight_list()

    best_cut = cut if abs(diff) <= balance_tolerance else None
    best_sides = sides.copy() if best_cut is not None else None

    moves_per_temp = schedule.moves_per_temperature(n)
    cutoff = schedule.acceptance_cutoff(n)

    attempted = accepted = 0
    temperatures = 0
    stale = 0
    trace: list[tuple[float, float, int]] = []

    rand = rng.random
    # randrange(n) delegates to _randbelow(n) for positive int n in every
    # random.Random; binding it directly skips the wrapper.
    randbelow = rng._randbelow
    exp = math.exp

    cdelta = [-g for g in gain_kernels.move_gains(csr, sides, backend)]

    while not schedule.is_frozen(stale, temperature):
        if temperatures >= schedule.max_temperatures:
            break
        accepted_here = 0
        attempted_here = 0
        improved_best = False
        for _ in range(moves_per_temp):
            if cutoff is not None and accepted_here >= cutoff:
                break  # Johnson's cutoff: this temperature equilibrated
            attempted_here += 1
            i = randbelow(n)
            side_v = sides[i]
            cut_delta = cdelta[i]
            wv = vweights[i]
            new_diff = diff - 2 * wv if side_v == 0 else diff + 2 * wv
            delta = cut_delta + alpha * (new_diff * new_diff - diff * diff)
            if delta > 0:
                if rand() >= exp(-delta / temperature):
                    continue
            sides[i] = 1 - side_v
            cut += cut_delta
            diff = new_diff
            accepted_here += 1
            cdelta[i] = -cut_delta
            row = nbrs[i]
            if wts is None:
                for u in row:
                    cdelta[u] += -2 if sides[u] == side_v else 2
            else:
                wrow = wts[i]
                for slot, u in enumerate(row):
                    w2 = 2 * wrow[slot]
                    cdelta[u] += -w2 if sides[u] == side_v else w2
            if abs(diff) <= balance_tolerance and (
                best_cut is None or cut < best_cut
            ):
                best_cut = cut
                best_sides = sides.copy()
                improved_best = True
        attempted += attempted_here
        accepted += accepted_here
        ratio = accepted_here / attempted_here if attempted_here else 0.0
        if record_trace:
            trace.append((temperature, ratio, cut))
        temperatures += 1
        if ratio < schedule.min_acceptance and not improved_best:
            stale += 1
        else:
            stale = 0
        temperature = schedule.next_temperature(temperature)

    return FlipWalk(
        sides=sides,
        best_sides=best_sides,
        cut=cut,
        attempted=attempted,
        accepted=accepted,
        temperatures=temperatures,
        final_temperature=temperature,
        trace=trace,
    )
