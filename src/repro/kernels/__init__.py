"""Batch gain/flip kernels over the CSR arrays, behind a backend switch.

The partition heuristics (:mod:`repro.partition.kl`,
:mod:`repro.partition.fm`, :mod:`repro.partition.annealing.sa`) run their
inner loops through one of three interchangeable *kernel backends*:

``dict``
    The label-keyed reference kernels that live with each heuristic.
    Slowest, simplest, and the determinism anchor everything else is
    checked against.
``array``
    Pure-stdlib kernels over the flat ``indptr`` / ``indices`` /
    ``edge_weight`` buffers of the cached
    :class:`~repro.graphs.csr.CSRGraph` (plain-list mirrors in the hot
    loops, ``array('q')`` canonical storage).  The default.
``numpy``
    The array kernels with numpy used for the *batch* stages — gain
    initialization via ``np.add.reduceat``, cut/side-weight recounts,
    and bulk lagged-Fibonacci stream generation.  Falls back to
    ``array`` when numpy is not installed; never changes a decision.

Every backend is held to the same contract the CSR equivalence matrix
enforces: identical cuts, assignments, pass/temperature traces, and RNG
stream consumption, bit for bit.  The switch is the ``REPRO_KERNEL``
environment variable (checked at kernel entry, so tests flip it per
call); ``REPRO_NO_CSR=1`` still forces the dict path everywhere, as
before.
"""

from __future__ import annotations

import os

from ..graphs.csr import csr_enabled

__all__ = [
    "BACKENDS",
    "KERNEL_ENV",
    "kernel_backend",
    "numpy_available",
]

KERNEL_ENV = "REPRO_KERNEL"
BACKENDS = ("dict", "array", "numpy")

try:  # an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


def numpy_available() -> bool:
    """True when the optional numpy backend can actually run."""
    return _np is not None


def kernel_backend() -> str:
    """The active kernel backend name (``dict`` | ``array`` | ``numpy``).

    ``REPRO_NO_CSR=1`` wins over everything (the historical escape hatch
    disables all array kernels); ``REPRO_KERNEL=numpy`` silently degrades
    to ``array`` when numpy is missing, so a config written on one host
    stays valid on another.
    """
    if not csr_enabled():
        return "dict"
    raw = os.environ.get(KERNEL_ENV, "array").strip().lower() or "array"
    if raw not in BACKENDS:
        raise ValueError(
            f"{KERNEL_ENV} must be one of {BACKENDS}, got {raw!r}"
        )
    if raw == "numpy" and _np is None:
        return "array"
    return raw
