"""Batch gain initialization and partition recounts over the CSR buffers.

These are the *embarrassingly parallel* stages of the heuristics — one
pass over every directed edge slot — and therefore the stages worth
vectorizing.  The array implementations live in
:mod:`repro.graphs.csr` (C-level ``sum(map(...))`` pipelines); this
module adds the numpy twins and a backend dispatcher.  All variants
return identical Python ints: the arithmetic is exact int64 (gains and
weights are bounded far below 2**63), so backend choice never changes a
decision downstream.
"""

from __future__ import annotations

from ..graphs.csr import (
    CSRGraph,
    csr_cut_weight,
    csr_move_gains,
    csr_side_weights,
)

__all__ = ["cut_weight", "move_gains", "side_weights"]


def _np_arrays(csr: CSRGraph):
    """Zero-copy numpy views of the canonical ``array('q')`` buffers, cached."""

    def build():
        import numpy as np

        return (
            np.frombuffer(csr.indptr, dtype=np.int64),
            np.frombuffer(csr.indices, dtype=np.int64),
            np.frombuffer(csr.edge_weight, dtype=np.int64),
            np.frombuffer(csr.heads, dtype=np.int64),
            np.frombuffer(csr.vertex_weight, dtype=np.int64),
        )

    return csr._list("numpy_views", build)


def _move_gains_numpy(csr: CSRGraph, sides: list[int]) -> list[int]:
    import numpy as np

    n = csr.num_vertices
    indptr, indices, edge_weight, _heads, _vw = _np_arrays(csr)
    sides_np = np.asarray(sides, dtype=np.int64)
    if csr.num_edges == 0:
        return [0] * n
    other = sides_np[indices]  # side of the far endpoint, per directed slot
    # Segment sums via prefix sums: csum[indptr[i+1]] - csum[indptr[i]].
    # (reduceat sums between *consecutive* offsets, so isolated vertices —
    # empty segments — would corrupt their neighbours' sums; prefix-sum
    # differences handle them exactly.  int64 is exact here: weights and
    # their totals are bounded far below 2**63.)
    def segment_sums(values):
        csum = np.zeros(len(values) + 1, dtype=np.int64)
        np.cumsum(values, out=csum[1:])
        return csum[indptr[1:]] - csum[indptr[:-1]]

    if csr.unit_edge_weights:
        s1 = segment_sums(other)
        wdeg = np.diff(indptr)
    else:
        s1 = segment_sums(other * edge_weight)
        wdeg = segment_sums(edge_weight)
    gains = np.where(sides_np == 0, 2 * s1 - wdeg, wdeg - 2 * s1)
    return gains.tolist()


def _cut_weight_numpy(csr: CSRGraph, sides: list[int]) -> int:
    import numpy as np

    if csr.num_edges == 0:
        return 0
    _indptr, indices, edge_weight, heads, _vw = _np_arrays(csr)
    sides_np = np.asarray(sides, dtype=np.int64)
    crossing = sides_np[heads] != sides_np[indices]
    if csr.unit_edge_weights:
        return int(np.count_nonzero(crossing)) // 2
    return int(edge_weight[crossing].sum()) // 2


def _side_weights_numpy(csr: CSRGraph, sides: list[int]) -> tuple[int, int]:
    import numpy as np

    if csr.unit_vertex_weights:
        w1 = int(sum(sides))
        return csr.num_vertices - w1, w1
    _indptr, _indices, _ew, _heads, vertex_weight = _np_arrays(csr)
    sides_np = np.asarray(sides, dtype=np.bool_)
    w1 = int(vertex_weight[sides_np].sum())
    return csr.total_vertex_weight - w1, w1


def move_gains(csr: CSRGraph, sides: list[int], backend: str) -> list[int]:
    """Per-vertex move gains under the named backend (``array`` | ``numpy``)."""
    if backend == "numpy":
        return _move_gains_numpy(csr, sides)
    return csr_move_gains(csr, sides)


def cut_weight(csr: CSRGraph, sides: list[int], backend: str) -> int:
    """Cut weight of ``sides`` under the named backend."""
    if backend == "numpy":
        return _cut_weight_numpy(csr, sides)
    return csr_cut_weight(csr, sides)


def side_weights(csr: CSRGraph, sides: list[int], backend: str) -> tuple[int, int]:
    """Per-side vertex weight totals under the named backend."""
    if backend == "numpy":
        return _side_weights_numpy(csr, sides)
    return csr_side_weights(csr, sides)
