"""The FM single-move sweep over the CSR arrays (bucket-list selection).

The dict kernel's per-side lazy heaps become true O(1) *bucket lists*:
``buckets[side][gain + B]`` holds a min-heap of label ranks (gains are
bounded by the maximum weighted degree ``B``, so ``2B + 1`` buckets
always suffice).  A ``maxoff`` cursor per side tracks the highest
possibly-occupied bucket; pushes raise it, selection walks it down.
Walking offsets descending and popping ranks ascending visits fresh
candidates in exactly the dict heaps' ``(-gain, label)`` order, so the
first legal candidate found is the same vertex the dict kernel picks.
A gain update is an O(1) bucket push instead of an O(log n) heap sift.

Gain initialization goes through :mod:`repro.kernels.gains`, so the
numpy backend batches it; the sweep itself is scalar on every backend
(each move depends on the previous one).
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..graphs.csr import CSRGraph, csr_side_weights
from . import gains as gain_kernels

__all__ = ["fm_pass_csr"]


def fm_pass_csr(
    csr: CSRGraph,
    assignment: dict,
    strict_tol: int,
    loose_tol: int,
    target_diff: int = 0,
    stats: dict | None = None,
    backend: str = "array",
) -> tuple[int, int]:
    """One FM pass over the CSR arrays; decision-identical to the dict kernel."""
    n = csr.num_vertices
    labels = csr.labels
    rank = csr.rank
    by_rank = csr.by_rank
    nbrs = csr.neighbor_lists()
    unit = csr.unit_edge_weights
    wts = None if unit else csr.weight_lists()
    vweights = csr.vertex_weight_list()
    uniform_vw = csr.unit_vertex_weights
    B = csr.max_weighted_degree

    sides = csr.sides_list(assignment)
    gains = gain_kernels.move_gains(csr, sides, backend)

    buckets: tuple[list[list[int]], list[list[int]]] = (
        [[] for _ in range(2 * B + 1)],
        [[] for _ in range(2 * B + 1)],
    )
    for i in range(n):
        buckets[sides[i]][gains[i] + B].append(rank[i])
    maxoff = [-1, -1]
    for side in (0, 1):
        for off in range(2 * B, -1, -1):
            bucket = buckets[side][off]
            if bucket:
                bucket.sort()  # sorted lists are valid rank min-heaps
                if maxoff[side] < 0:
                    maxoff[side] = off

    w0, w1 = csr_side_weights(csr, sides)
    diff = w0 - w1
    locked = bytearray(n)
    sequence: list[int] = []  # moved vertex ids in order
    running_gain = 0

    start_dev = abs(diff - target_diff)
    start_balanced = start_dev <= strict_tol
    best_balanced_gain = 0 if start_balanced else None
    best_balanced_k = 0
    best_deviation = start_dev
    best_deviation_k = 0
    best_deviation_gain = 0
    stale = 0  # obs only, as in the dict kernel
    stashed = 0

    def next_allowed(side: int):
        """Best unlocked, fresh, balance-legal ``(off, rank, id)`` on ``side``.

        With uniform vertex weights every candidate on a side is equally
        (il)legal, so legality is one check per call; otherwise illegal
        entries are stashed and restored, as in the dict kernel.
        """
        nonlocal stale, stashed
        bks = buckets[side]
        off = maxoff[side]
        dev_cur = abs(diff - target_diff)
        if uniform_vw:
            new_diff = diff - 2 if side == 0 else diff + 2
            new_dev = abs(new_diff - target_diff)
            if not (new_dev <= loose_tol or new_dev < dev_cur):
                return None
            while off >= 0:
                bucket = bks[off]
                while bucket:
                    r = heappop(bucket)
                    v = by_rank[r]
                    if not locked[v] and sides[v] == side and gains[v] == off - B:
                        maxoff[side] = off
                        return off, r, v
                    stale += 1
                off -= 1
            maxoff[side] = -1
            return None
        stash: list[tuple[int, int]] = []
        found = None
        while off >= 0:
            bucket = bks[off]
            while bucket:
                r = heappop(bucket)
                v = by_rank[r]
                if locked[v] or sides[v] != side or gains[v] != off - B:
                    stale += 1
                    continue
                wv = vweights[v]
                new_diff = diff - 2 * wv if side == 0 else diff + 2 * wv
                new_dev = abs(new_diff - target_diff)
                if new_dev <= loose_tol or new_dev < dev_cur:
                    found = (off, r, v)
                    break
                stash.append((off, r))
            if found is not None:
                break
            off -= 1
        top = off if found is not None else -1
        stashed += len(stash)
        for soff, sr in stash:
            heappush(bks[soff], sr)
            if soff > top:
                top = soff
        maxoff[side] = top
        return found

    while len(sequence) < n:
        cand0 = next_allowed(0)
        cand1 = next_allowed(1)
        if cand0 is None and cand1 is None:
            break
        # The dict kernel compares only the gains across sides (labels never
        # enter the cross-side comparison), so equal gains choose side 0.
        if cand1 is None or (cand0 is not None and cand0[0] >= cand1[0]):
            chosen, other, side_v = cand0, cand1, 0
        else:
            chosen, other, side_v = cand1, cand0, 1
        if other is not None:
            ooff, orank, ov = other
            obks = buckets[sides[ov]]
            heappush(obks[ooff], orank)
            if ooff > maxoff[sides[ov]]:
                maxoff[sides[ov]] = ooff

        off, _r, v = chosen
        gain_v = off - B
        wv = vweights[v]
        locked[v] = 1
        sides[v] = 1 - side_v
        diff = diff - 2 * wv if side_v == 0 else diff + 2 * wv
        running_gain += gain_v
        sequence.append(v)

        row = nbrs[v]
        if unit:
            for u in row:
                if locked[u]:
                    continue
                g = gains[u] + (2 if sides[u] == side_v else -2)
                gains[u] = g
                su = sides[u]
                heappush(buckets[su][g + B], rank[u])
                if g + B > maxoff[su]:
                    maxoff[su] = g + B
        else:
            wrow = wts[v]
            for slot, u in enumerate(row):
                if locked[u]:
                    continue
                w2 = 2 * wrow[slot]
                g = gains[u] + (w2 if sides[u] == side_v else -w2)
                gains[u] = g
                su = sides[u]
                heappush(buckets[su][g + B], rank[u])
                if g + B > maxoff[su]:
                    maxoff[su] = g + B
        gains[v] = -gain_v

        k = len(sequence)
        dev = abs(diff - target_diff)
        if dev <= strict_tol:
            if best_balanced_gain is None or running_gain > best_balanced_gain:
                best_balanced_gain = running_gain
                best_balanced_k = k
        if dev < best_deviation or (
            dev == best_deviation and running_gain > best_deviation_gain
        ):
            best_deviation = dev
            best_deviation_k = k
            best_deviation_gain = running_gain
    if best_balanced_gain is not None:
        keep, applied = best_balanced_k, best_balanced_gain
    else:
        keep, applied = best_deviation_k, best_deviation_gain
    for v in sequence[:keep]:
        lv = labels[v]
        assignment[lv] = 1 - assignment[lv]
    if stats is not None:
        stats["moves_considered"] = stats.get("moves_considered", 0) + len(sequence)
        stats["stale_pops"] = stats.get("stale_pops", 0) + stale
        stats["stash_restores"] = stats.get("stash_restores", 0) + stashed
    return applied, keep
