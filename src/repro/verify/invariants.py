"""Invariant oracles: pure checkers for ``(instance, partition)`` pairs.

Every checker takes already-computed objects, recomputes the claimed
quantity from scratch, and returns a list of :class:`Violation` values
(empty = the invariant holds).  Nothing here mutates its inputs or draws
randomness, so the same oracle serves the unit tests, the property
harness, and the ``repro-bisect check`` command.

The invariants (see ``docs/verification.md``):

* **balance** — side vertex counts differ by at most 1 (exactly equal for
  even ``n`` on unit-weight graphs); weighted imbalance within the
  graph's minimum achievable tolerance;
* **cut exactness** — the reported cut equals a from-scratch recount over
  the edge (or net) list;
* **vertex conservation** — the two sides partition the vertex set: no
  vertex lost, none duplicated, none invented;
* **compaction round-trip** — supervertex membership partitions the
  original vertex set, weights are conserved, and projection is
  cut-exact (:func:`check_compaction_provenance`);
* **monotone refinement** — the KL/FM cut trace never increases
  (pass gains are non-negative) when the run started balanced;
* **SA bookkeeping** — Metropolis acceptance counters are consistent and
  the cooling trace is sane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..graphs.graph import Graph
from ..partition.bisection import (
    Bisection,
    cut_weight,
    minimum_achievable_imbalance,
)

__all__ = [
    "Violation",
    "balance_tolerance_for",
    "check_balance",
    "check_compaction_provenance",
    "check_cut_exact",
    "check_monotone_refinement",
    "check_result",
    "check_sa_bookkeeping",
    "check_vertex_conservation",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which oracle failed and a human-readable why."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


def _recompute_cut(instance: Any, assignment: dict) -> int:
    """From-scratch cut of ``assignment`` on a graph or hypergraph."""
    if isinstance(instance, Graph):
        return cut_weight(instance, assignment)
    from ..hypergraph.hypergraph import net_cut_weight

    return net_cut_weight(instance, assignment)


def balance_tolerance_for(instance: Any) -> int:
    """Minimum achievable weighted imbalance of ``instance``.

    For unit vertex weights this is ``n % 2``; for contracted/weighted
    instances it is the exact subset-sum optimum.  Works for graphs and
    hypergraphs alike (both expose ``vertices``/``vertex_weight``).
    """
    if instance.is_uniform_vertex_weight():
        return instance.num_vertices % 2
    return minimum_achievable_imbalance(
        instance.vertex_weight(v) for v in instance.vertices()
    )


def check_balance(instance: Any, partition: Any, tolerance: int | None = None) -> list[Violation]:
    """Exact balance: side sizes within 1 (unit weights) / weights within tolerance."""
    violations: list[Violation] = []
    if tolerance is None:
        tolerance = balance_tolerance_for(instance)
    side0 = partition.side(0)
    side1 = partition.side(1)
    if instance.is_uniform_vertex_weight():
        if abs(len(side0) - len(side1)) > max(tolerance, instance.num_vertices % 2):
            violations.append(Violation(
                "balance",
                f"side sizes ({len(side0)}, {len(side1)}) differ by more than "
                f"{max(tolerance, instance.num_vertices % 2)}",
            ))
    w0 = sum(instance.vertex_weight(v) for v in side0)
    w1 = sum(instance.vertex_weight(v) for v in side1)
    if abs(w0 - w1) > tolerance:
        violations.append(Violation(
            "balance",
            f"weighted imbalance |{w0} - {w1}| = {abs(w0 - w1)} exceeds "
            f"tolerance {tolerance}",
        ))
    return violations


def check_cut_exact(instance: Any, partition: Any, reported_cut: int | None = None) -> list[Violation]:
    """The reported cut equals a from-scratch recount over all edges/nets."""
    violations: list[Violation] = []
    actual = _recompute_cut(instance, partition.assignment())
    if partition.cut != actual:
        violations.append(Violation(
            "cut-exact",
            f"partition reports cut {partition.cut}, recount gives {actual}",
        ))
    if reported_cut is not None and reported_cut != actual:
        violations.append(Violation(
            "cut-exact",
            f"algorithm reported cut {reported_cut}, recount gives {actual}",
        ))
    return violations


def check_vertex_conservation(instance: Any, partition: Any) -> list[Violation]:
    """Sides partition the vertex set: nothing lost, duplicated, or invented."""
    violations: list[Violation] = []
    side0 = partition.side(0)
    side1 = partition.side(1)
    vertices = set(instance.vertices())
    overlap = side0 & side1
    if overlap:
        violations.append(Violation(
            "conservation", f"{len(overlap)} vertices on both sides, e.g. "
            f"{next(iter(overlap))!r}",
        ))
    union = side0 | side1
    lost = vertices - union
    if lost:
        violations.append(Violation(
            "conservation", f"{len(lost)} vertices lost, e.g. {next(iter(lost))!r}",
        ))
    invented = union - vertices
    if invented:
        violations.append(Violation(
            "conservation",
            f"{len(invented)} vertices not in the instance, e.g. "
            f"{next(iter(invented))!r}",
        ))
    return violations


def check_compaction_provenance(compaction: Any) -> list[Violation]:
    """Compaction round-trip: membership partitions V, weights conserved.

    Wraps :meth:`repro.core.compaction.Compaction.validate` (and the
    hypergraph analogue when it exposes ``validate``) into the violation
    protocol.
    """
    validate = getattr(compaction, "validate", None)
    if validate is None:
        return []
    try:
        validate()
    except AssertionError as exc:
        return [Violation("compaction", str(exc))]
    return []


def check_monotone_refinement(result: Any) -> list[Violation]:
    """KL/FM cut trace is monotone non-increasing and lands on the final cut.

    Applies to any result exposing ``initial_cut`` + ``pass_gains`` (the
    KL/FM pass protocol).  Valid only for runs that started balanced —
    which covers every run the harness drives (random starts are balanced;
    the compaction pipeline rebalances before refining).
    """
    gains = getattr(result, "pass_gains", None)
    initial = getattr(result, "initial_cut", None)
    if gains is None or initial is None:
        return []
    violations: list[Violation] = []
    negative = [g for g in gains if g < 0]
    if negative:
        violations.append(Violation(
            "monotone-cut",
            f"pass gains contain negative entries {negative} (cut increased)",
        ))
    final = initial - sum(gains)
    if final != result.cut:
        violations.append(Violation(
            "monotone-cut",
            f"initial cut {initial} minus pass gains {gains} gives {final}, "
            f"but the result's cut is {result.cut}",
        ))
    if result.cut > initial:
        violations.append(Violation(
            "monotone-cut",
            f"final cut {result.cut} exceeds initial cut {initial}",
        ))
    return violations


def check_sa_bookkeeping(result: Any) -> list[Violation]:
    """Metropolis acceptance accounting and cooling-trace sanity for SA runs."""
    attempted = getattr(result, "moves_attempted", None)
    accepted = getattr(result, "moves_accepted", None)
    if attempted is None or accepted is None:
        return []
    violations: list[Violation] = []
    if not 0 <= accepted <= attempted:
        violations.append(Violation(
            "sa-bookkeeping",
            f"accepted moves {accepted} outside [0, attempted={attempted}]",
        ))
    trace = getattr(result, "temperature_trace", None)
    temperatures = getattr(result, "temperatures", None)
    # An empty trace means the run opted out of recording (record_trace=False),
    # not that bookkeeping drifted — only check a trace that was kept.
    if trace and temperatures is not None and len(trace) != temperatures:
        violations.append(Violation(
            "sa-bookkeeping",
            f"trace has {len(trace)} entries but {temperatures} temperatures "
            "were counted",
        ))
    if trace:
        previous = None
        for step, (temp, ratio, _cut) in enumerate(trace):
            if temp <= 0:
                violations.append(Violation(
                    "sa-bookkeeping", f"non-positive temperature {temp} at step {step}",
                ))
                break
            if previous is not None and temp > previous:
                violations.append(Violation(
                    "sa-bookkeeping",
                    f"temperature rose from {previous} to {temp} at step {step}",
                ))
                break
            if not 0.0 <= ratio <= 1.0:
                violations.append(Violation(
                    "sa-bookkeeping",
                    f"acceptance ratio {ratio} outside [0, 1] at step {step}",
                ))
                break
            previous = temp
    initial_temp = getattr(result, "initial_temperature", None)
    final_temp = getattr(result, "final_temperature", None)
    if (
        initial_temp is not None
        and final_temp is not None
        and final_temp > initial_temp
    ):
        violations.append(Violation(
            "sa-bookkeeping",
            f"final temperature {final_temp} exceeds initial {initial_temp}",
        ))
    tolerance = getattr(result, "balance_tolerance", None)
    if tolerance is not None:
        bisection = getattr(result, "bisection", None)
        if bisection is not None and bisection.imbalance > tolerance:
            violations.append(Violation(
                "sa-bookkeeping",
                f"returned imbalance {bisection.imbalance} exceeds the "
                f"tolerance {tolerance} the run was asked to honor",
            ))
    initial_cut = getattr(result, "initial_cut", None)
    initial_imbalance = getattr(result, "initial_imbalance", None)
    started_balanced = (
        tolerance is not None
        and initial_imbalance is not None
        and initial_imbalance <= tolerance
    )
    if initial_cut is not None and started_balanced and result.cut > initial_cut:
        # Best-seen tracking: from a *balanced* start the best balanced
        # configuration can never be worse than the start itself.  An
        # unbalanced start (e.g. the compacted variants project a coarse
        # partition that violates the fine tolerance) carries no such
        # guarantee — the cheapest balanced state may cost more than the
        # unbalanced one the walk began from — so the check only fires when
        # the result's provenance proves the start was balanced.
        violations.append(Violation(
            "sa-bookkeeping",
            f"best-seen cut {result.cut} exceeds initial cut {initial_cut} "
            f"despite a balanced start (imbalance {initial_imbalance} <= "
            f"tolerance {tolerance})",
        ))
    return violations


def _check_compacted_result(instance: Any, result: Any) -> list[Violation]:
    """Pipeline-specific invariants of a ``CompactedResult``-shaped object."""
    violations: list[Violation] = []
    compaction = getattr(result, "compaction", None)
    if compaction is not None:
        violations.extend(check_compaction_provenance(compaction))
    coarse = getattr(result, "coarse_result", None)
    projected = getattr(result, "projected_cut", None)
    if coarse is not None and projected is not None and coarse.cut != projected:
        violations.append(Violation(
            "compaction",
            f"projection changed the cut: coarse {coarse.cut} != projected "
            f"{projected}",
        ))
    return violations


def check_result(instance: Any, result: Any, tolerance: int | None = None) -> list[Violation]:
    """Run every applicable oracle against one algorithm result.

    ``instance`` is the graph or hypergraph the algorithm ran on;
    ``result`` is whatever it returned (any object exposing ``.cut`` and
    usually ``.bisection``).  Nested compaction-pipeline results are
    checked recursively (the coarse-level result against the coarse
    instance it actually ran on).
    """
    violations: list[Violation] = []
    bisection = getattr(result, "bisection", None)
    if bisection is None and isinstance(result, (Bisection,)):
        bisection = result
    if bisection is None:
        return [Violation("shape", "result exposes no bisection to check")]
    violations.extend(check_vertex_conservation(instance, bisection))
    violations.extend(check_balance(instance, bisection, tolerance))
    violations.extend(check_cut_exact(instance, bisection, getattr(result, "cut", None)))
    violations.extend(check_monotone_refinement(result))
    violations.extend(check_sa_bookkeeping(result))
    violations.extend(_check_compacted_result(instance, result))
    # Recurse into the compaction pipeline's inner results.
    compaction = getattr(result, "compaction", None)
    coarse = getattr(result, "coarse_result", None)
    if compaction is not None and coarse is not None and hasattr(coarse, "bisection"):
        coarse_instance = getattr(compaction, "coarse", None)
        if coarse_instance is not None:
            for v in check_result(coarse_instance, coarse):
                violations.append(Violation(f"coarse.{v.invariant}", v.message))
    final = getattr(result, "final_result", None)
    if final is not None and hasattr(final, "bisection"):
        for v in check_result(instance, final):
            violations.append(Violation(f"final.{v.invariant}", v.message))
    return violations
