"""Exact-oracle comparison: heuristics vs. the brute-force optimum.

For corpus instances with ``n <= EXACT_MAX_VERTICES`` the true bisection
width is computable by exhaustive search (``partition/exact.py``), so
every heuristic can be scored against ground truth, not just against
invariants.  A heuristic *may* be suboptimal — they are heuristics — but
on graphs this small a healthy implementation lands within a small
bounded gap of the optimum; a broken gain update or a sign error blows
straight through the bound.

The documented bound is ``cut <= factor * optimum + slack`` with the
per-algorithm ``(factor, slack)`` pairs in :data:`ORACLE_BOUNDS`
(measured over the corpus with wide margin; see ``docs/verification.md``).
``slack`` absorbs the near-zero-optimum regime where a multiplicative
factor alone is meaningless (e.g. optimum 0 on disconnected ``Gnp``
draws).
"""

from __future__ import annotations

from typing import Any

from ..graphs.graph import Graph
from ..partition.exact import exact_bisection_width
from .invariants import Violation

__all__ = [
    "EXACT_MAX_VERTICES",
    "ORACLE_BOUNDS",
    "check_against_optimum",
    "exact_optimum",
    "oracle_bound",
]

EXACT_MAX_VERTICES = 14

# (factor, slack): a result violates the oracle when
# cut > factor * optimum + slack.  Measured over the corpus families
# (gnp, gbreg3, tree, planted) at n <= 14 across seeds 0-11, then given
# margin: the compacted variants (ckl/csa/chfm/chsa) land nearest the
# optimum (the coarse level smooths away most bad local optima), single
# runs of KL/FM sit within a few edges, and plain greedy descent plus
# the short-schedule annealers legitimately stop at worse local optima.
# A broken gain update or sign error lands near the *maximum* cut and
# blows through any of these.
ORACLE_BOUNDS: dict[str, tuple[float, int]] = {
    "kl": (2.0, 5),
    "ckl": (2.0, 3),
    "fm": (2.0, 5),
    "multilevel": (2.0, 5),
    "cycles": (1.0, 0),  # provably exact on its (degree <= 2) domain
    "greedy": (2.0, 7),
    "sa": (2.0, 7),
    "csa": (2.0, 3),
    "hfm": (2.0, 7),
    "chfm": (2.0, 4),
    "hsa": (3.0, 8),  # a one-pass-per-temperature schedule anneals poorly
    "chsa": (2.0, 4),
}
_DEFAULT_BOUND = (3.0, 8)


def oracle_bound(algorithm: str) -> tuple[float, int]:
    """The documented ``(factor, slack)`` bound for ``algorithm``."""
    return ORACLE_BOUNDS.get(algorithm, _DEFAULT_BOUND)


def exact_optimum(graph: Graph) -> int:
    """True bisection width of a small graph (raises above the size cap)."""
    if graph.num_vertices > EXACT_MAX_VERTICES:
        raise ValueError(
            f"exact oracle capped at {EXACT_MAX_VERTICES} vertices, "
            f"got {graph.num_vertices}"
        )
    return exact_bisection_width(graph)


def check_against_optimum(
    algorithm: str,
    cut: int,
    optimum: int,
    context: Any = "",
) -> list[Violation]:
    """Compare a heuristic cut against the brute-force optimum.

    A cut *below* the proven optimum of a balanced bisection is an
    outright correctness bug (the partition cannot be both balanced and
    that cheap); a cut above the documented bound flags a quality
    regression.  ``context`` (e.g. the instance name and seed) is embedded
    in the message so failures are reproducible.
    """
    violations = []
    suffix = f" [{context}]" if context else ""
    if cut < optimum:
        violations.append(Violation(
            "exact-oracle",
            f"{algorithm} reported cut {cut} below the proven optimum "
            f"{optimum} — the cut count or balance check is broken{suffix}",
        ))
    factor, slack = oracle_bound(algorithm)
    bound = factor * optimum + slack
    if cut > bound:
        violations.append(Violation(
            "exact-oracle",
            f"{algorithm} cut {cut} exceeds the documented bound "
            f"{factor} * {optimum} + {slack} = {bound:g}{suffix}",
        ))
    return violations
