"""Metamorphic property harness: seeded corpus + relations between runs.

The corpus (:func:`corpus`) is a deterministic set of small instances
drawn from the paper's graph families — ``Gnp``, ``Gbreg(d=3)``, random
trees, planted bisections (``G2set``) — plus cycles (the one family the
exact path/cycle solver accepts).  Instances are fully determined by
``(family, n, seed)``, so a failure report names everything needed to
reproduce it.

The metamorphic relations check *pairs* of runs against each other, no
ground truth needed:

* **relabeling invariance** — run the algorithm on an isomorphic copy
  with permuted labels; the partition it returns, mapped back through the
  isomorphism, must have the same recounted cut and balance on the
  original graph;
* **seed determinism** — the same ``(algorithm, instance, seed)`` run
  twice returns bitwise-identical partitions;
* **jobs equivalence** — the engine's ``jobs=1`` and ``jobs=N`` paths
  return identical results for identical job lists;
* **cache equivalence** — a cache-hit replay equals the original run;
* **edge-permutation invariance** — a graph rebuilt from a shuffled edge
  list has the same fingerprint, and any fixed assignment has the same
  recounted cut on both copies.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..engine import AlgorithmSpec, Engine, Job, ResultCache
from ..graphs.generators import (
    cycle_graph,
    feasible_bisection_widths,
    g2set,
    gbreg,
    gnp,
    random_tree,
)
from ..graphs.graph import Graph, graph_fingerprint
from ..partition.bisection import cut_weight
from ..rng import LaggedFibonacciRandom
from .invariants import Violation, check_balance

__all__ = [
    "DEFAULT_FAMILIES",
    "Instance",
    "corpus",
    "make_instance",
    "check_cache_equivalence",
    "check_determinism",
    "check_edge_permutation_invariance",
    "check_jobs_equivalence",
    "check_relabeling_invariance",
]

DEFAULT_FAMILIES = ("gnp", "gbreg3", "tree", "planted", "cycle")


@dataclass(frozen=True)
class Instance:
    """One corpus member: a graph plus the recipe that produced it."""

    name: str
    family: str
    graph: Graph
    seed: int
    meta: dict = field(default_factory=dict)

    @property
    def max_degree(self) -> int:
        return max((self.graph.degree(v) for v in self.graph.vertices()), default=0)


def make_instance(family: str, n: int, seed: int) -> Instance:
    """Build the deterministic corpus instance ``(family, n, seed)``.

    ``gbreg3`` requires ``n >= 8`` (the model needs ``d < n/2``) and picks
    the smallest positive planted width the parity constraint allows.
    """
    name = f"{family}-n{n}-s{seed}"
    if family == "gnp":
        return Instance(name, family, gnp(n, min(1.0, 3.0 / n), seed), seed)
    if family == "gbreg3":
        widths = feasible_bisection_widths(n, 3, limit=n)
        b = next((w for w in widths if w > 0), widths[0])
        sample = gbreg(n, b, 3, rng=seed)
        return Instance(name, family, sample.graph, seed, {"planted_width": b})
    if family == "tree":
        return Instance(name, family, random_tree(n, seed), seed)
    if family == "planted":
        b = max(1, n // 4)
        sample = g2set(n, 0.5, 0.5, b, rng=seed)
        return Instance(name, family, sample.graph, seed, {"planted_width": b})
    if family == "cycle":
        return Instance(name, family, cycle_graph(n), seed)
    raise ValueError(f"unknown corpus family {family!r} (known: {DEFAULT_FAMILIES})")


def corpus(
    families: Iterable[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = (10, 16),
    seeds: Sequence[int] = (0, 1, 2),
) -> list[Instance]:
    """The seeded instance corpus: one instance per (family, size, seed)."""
    instances = []
    for family in families:
        for n in sizes:
            for seed in seeds:
                instances.append(make_instance(family, n, seed))
    return instances


# -- metamorphic relations ---------------------------------------------------------


def permuted_copy(graph: Graph, rng: random.Random) -> tuple[Graph, dict]:
    """An isomorphic copy with shuffled labels *and* insertion order.

    Returns ``(copy, mapping)`` with ``mapping[original] = new label``.
    """
    vertices = list(graph.vertices())
    labels = list(range(len(vertices)))
    rng.shuffle(labels)
    mapping = dict(zip(vertices, labels))
    order = list(vertices)
    rng.shuffle(order)
    copy = Graph()
    for v in order:
        copy.add_vertex(mapping[v], graph.vertex_weight(v))
    edges = [(mapping[u], mapping[v], w) for u, v, w in graph.edges()]
    rng.shuffle(edges)
    for u, v, w in edges:
        copy.add_edge(u, v, w)
    return copy, mapping


def check_relabeling_invariance(
    algorithm: Callable[[Any, random.Random], Any],
    graph: Graph,
    seed: int,
    permutation_seed: int = 0,
) -> list[Violation]:
    """Run on a label-permuted isomorphic copy; verify the result maps back.

    The heuristic is free to return a *different* partition on the copy
    (tie-breaking follows labels), but whatever it returns must be
    self-consistent: mapped back through the isomorphism, the partition
    must recount to the same cut on the original graph and stay balanced.
    """
    copy, mapping = permuted_copy(graph, LaggedFibonacciRandom(permutation_seed))
    result = algorithm(copy, LaggedFibonacciRandom(seed))
    bisection = result.bisection
    inverse = {new: old for old, new in mapping.items()}
    assignment = {inverse[v]: bisection.side_of(v) for v in copy.vertices()}
    violations = []
    original_cut = cut_weight(graph, assignment)
    if original_cut != result.cut:
        violations.append(Violation(
            "relabeling",
            f"cut {result.cut} on the permuted copy recounts to {original_cut} "
            "on the original graph",
        ))
    from ..partition.bisection import Bisection

    violations.extend(check_balance(graph, Bisection(graph, assignment)))
    return violations


def check_determinism(
    algorithm: Callable[[Any, random.Random], Any],
    instance: Any,
    seed: int,
) -> list[Violation]:
    """Two runs with the same seed return identical cuts and partitions."""
    first = algorithm(instance, LaggedFibonacciRandom(seed))
    second = algorithm(instance, LaggedFibonacciRandom(seed))
    violations = []
    if first.cut != second.cut:
        violations.append(Violation(
            "determinism", f"seed {seed} gave cuts {first.cut} and {second.cut}",
        ))
    if first.bisection.side(0) not in (
        second.bisection.side(0),
        second.bisection.side(1),
    ):
        violations.append(Violation(
            "determinism", f"seed {seed} gave different partitions across runs",
        ))
    return violations


def _job_signature(result) -> tuple:
    return (result.status, result.cut, result.side0)


def check_jobs_equivalence(
    spec: AlgorithmSpec,
    graph: Graph,
    seeds: Sequence[int],
    jobs: int = 2,
) -> list[Violation]:
    """The engine's serial and parallel paths return identical results.

    Runs the same job list through ``Engine(jobs=1)`` and
    ``Engine(jobs=jobs)`` (caching disabled) and compares status, cut,
    and the side-0 token tuple of every job.  The engine's documented
    serial fallback (restricted environments without working process
    pools) keeps this meaningful everywhere: the fallback path *is* the
    serial path, so the comparison degrades to a determinism check.
    """
    job_list = [
        Job("g", spec, seed, job_id=f"s{seed}") for seed in seeds
    ]
    serial = Engine(jobs=1).run(job_list, {"g": graph})
    parallel = Engine(jobs=jobs).run(job_list, {"g": graph})
    violations = []
    for left, right in zip(serial, parallel):
        if _job_signature(left) != _job_signature(right):
            violations.append(Violation(
                "jobs-equivalence",
                f"job {left.job_id}: jobs=1 gave (status={left.status}, "
                f"cut={left.cut}) but jobs={jobs} gave (status={right.status}, "
                f"cut={right.cut}) or a different partition",
            ))
    return violations


def check_cache_equivalence(
    spec: AlgorithmSpec,
    graph: Graph,
    seed: int,
    cache_dir: str,
) -> list[Violation]:
    """A cache-hit replay equals the original computation bit for bit."""
    job = Job("g", spec, seed, job_id="cached")
    first = Engine(jobs=1, cache=ResultCache(cache_dir)).run([job], {"g": graph})[0]
    second = Engine(jobs=1, cache=ResultCache(cache_dir)).run([job], {"g": graph})[0]
    violations = []
    if first.ok and not second.from_cache:
        violations.append(Violation(
            "cache-equivalence", f"second run of seed {seed} missed the cache",
        ))
    if _job_signature(first) != _job_signature(second):
        violations.append(Violation(
            "cache-equivalence",
            f"cache replay of seed {seed} differs: cut {first.cut} -> "
            f"{second.cut}",
        ))
    return violations


def check_edge_permutation_invariance(graph: Graph, seed: int = 0) -> list[Violation]:
    """A graph rebuilt from a shuffled edge list is the same graph.

    Checks the canonical fingerprint and the recounted cut of a fixed
    reference assignment (alternating sides in vertex order) on both
    copies.
    """
    rng = LaggedFibonacciRandom(seed)
    edges = [(u, v, w) for u, v, w in graph.edges()]
    rng.shuffle(edges)
    rebuilt = Graph()
    for v in graph.vertices():
        rebuilt.add_vertex(v, graph.vertex_weight(v))
    for u, v, w in edges:
        rebuilt.add_edge(u, v, w)
    violations = []
    if graph_fingerprint(rebuilt) != graph_fingerprint(graph):
        violations.append(Violation(
            "edge-permutation", "fingerprint changed under edge-list permutation",
        ))
    reference = {v: i % 2 for i, v in enumerate(graph.vertices())}
    if cut_weight(graph, reference) != cut_weight(rebuilt, reference):
        violations.append(Violation(
            "edge-permutation",
            "cut of a fixed assignment changed under edge-list permutation",
        ))
    return violations
