"""Verification subsystem: invariant oracles, metamorphic properties, check runner.

Three layers (see ``docs/verification.md``):

* :mod:`repro.verify.invariants` — pure checkers for any
  ``(instance, partition)`` pair: balance, cut exactness, vertex
  conservation, compaction round-trips, monotone refinement, SA
  bookkeeping;
* :mod:`repro.verify.properties` / :mod:`repro.verify.oracles` — the
  seeded instance corpus, metamorphic relations between runs, and the
  brute-force exact oracle for small instances;
* :mod:`repro.verify.check` — the ``repro-bisect check`` runner that
  sweeps every registered algorithm over the corpus and renders a
  pass/fail report.

Both the test suite (``tests/verify/``) and the CLI consume these; the
oracles never mutate their inputs and draw no hidden randomness.
"""

from .check import CheckRecord, CheckReport, run_check
from .invariants import (
    Violation,
    balance_tolerance_for,
    check_balance,
    check_compaction_provenance,
    check_cut_exact,
    check_monotone_refinement,
    check_result,
    check_sa_bookkeeping,
    check_vertex_conservation,
)
from .oracles import (
    EXACT_MAX_VERTICES,
    ORACLE_BOUNDS,
    check_against_optimum,
    exact_optimum,
    oracle_bound,
)
from .properties import (
    DEFAULT_FAMILIES,
    Instance,
    check_cache_equivalence,
    check_determinism,
    check_edge_permutation_invariance,
    check_jobs_equivalence,
    check_relabeling_invariance,
    corpus,
    make_instance,
)

__all__ = [
    "CheckRecord",
    "CheckReport",
    "DEFAULT_FAMILIES",
    "EXACT_MAX_VERTICES",
    "Instance",
    "ORACLE_BOUNDS",
    "Violation",
    "balance_tolerance_for",
    "check_against_optimum",
    "check_balance",
    "check_cache_equivalence",
    "check_compaction_provenance",
    "check_cut_exact",
    "check_determinism",
    "check_edge_permutation_invariance",
    "check_jobs_equivalence",
    "check_monotone_refinement",
    "check_relabeling_invariance",
    "check_result",
    "check_sa_bookkeeping",
    "check_vertex_conservation",
    "corpus",
    "exact_optimum",
    "make_instance",
    "oracle_bound",
    "run_check",
]
