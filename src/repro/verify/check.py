"""The ``repro-bisect check`` runner: every algorithm vs. every oracle.

Enumerates the engine registry, runs each algorithm over the seeded
instance corpus, and applies the three verification layers — invariant
oracles on every result, the exact oracle on instances small enough to
brute-force, and the metamorphic relations.  Produces a
:class:`CheckReport` that renders as a pass/fail table and serializes to
JSON for the CI artifact.

The runner is deliberately deterministic: the corpus is seeded, run
seeds equal instance seeds, and the SA-family algorithms get a short
explicit schedule (``size_factor=1``) so a full check stays interactive.
"""

from __future__ import annotations

import tempfile
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..bench.tables import render_generic_table
from ..engine import AlgorithmSpec, algorithm_info, algorithm_names, build_algorithm
from ..obs.clock import monotonic_time
from ..rng import LaggedFibonacciRandom
from .invariants import check_result
from .oracles import EXACT_MAX_VERTICES, check_against_optimum, exact_optimum
from .properties import (
    DEFAULT_FAMILIES,
    Instance,
    check_cache_equivalence,
    check_determinism,
    check_edge_permutation_invariance,
    check_jobs_equivalence,
    check_relabeling_invariance,
    corpus,
)

__all__ = ["CheckRecord", "CheckReport", "run_check"]

# Short explicit schedules for the annealing family keep the full check
# interactive; every other algorithm runs with its defaults.
_FAST_PARAMS: dict[str, dict[str, Any]] = {
    "sa": {"size_factor": 1},
    "csa": {"size_factor": 1},
    "hsa": {"size_factor": 1},
    "chsa": {"size_factor": 1},
}


@dataclass(frozen=True)
class CheckRecord:
    """One checked combination and its verdict."""

    section: str  # "invariants" | "exact" | "metamorphic"
    algorithm: str
    instance: str
    seed: int
    status: str  # "ok" | "fail" | "skip"
    seconds: float = 0.0
    cut: int | None = None
    violations: tuple[str, ...] = ()
    note: str = ""


@dataclass
class CheckReport:
    """All records of one check run, with rendering and JSON export."""

    records: list[CheckRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(record.status != "fail" for record in self.records)

    def counts(self) -> dict[str, int]:
        tally = {"ok": 0, "fail": 0, "skip": 0}
        for record in self.records:
            tally[record.status] += 1
        return tally

    def failures(self) -> list[CheckRecord]:
        return [record for record in self.records if record.status == "fail"]

    def to_json(self) -> dict[str, Any]:
        counts = self.counts()
        sections: dict[str, dict[str, int]] = {}
        for record in self.records:
            bucket = sections.setdefault(
                record.section, {"ok": 0, "fail": 0, "skip": 0}
            )
            bucket[record.status] += 1
        return {
            "version": 1,
            "ok": self.ok,
            "summary": {**counts, "sections": sections},
            "records": [
                {
                    "section": r.section,
                    "algorithm": r.algorithm,
                    "instance": r.instance,
                    "seed": r.seed,
                    "status": r.status,
                    "seconds": round(r.seconds, 6),
                    "cut": r.cut,
                    "violations": list(r.violations),
                    "note": r.note,
                }
                for r in self.records
            ],
        }

    def render(self, verbose: bool = False) -> str:
        """The pass/fail summary table plus one line per failure."""
        per_algorithm: dict[tuple[str, str], dict[str, int]] = {}
        for record in self.records:
            key = (record.section, record.algorithm)
            bucket = per_algorithm.setdefault(key, {"ok": 0, "fail": 0, "skip": 0})
            bucket[record.status] += 1
        rows = [
            [
                section,
                algorithm,
                tally["ok"],
                tally["fail"],
                tally["skip"],
                "FAIL" if tally["fail"] else "pass",
            ]
            for (section, algorithm), tally in sorted(per_algorithm.items())
        ]
        lines = [
            render_generic_table(
                ["section", "algorithm", "ok", "fail", "skip", "verdict"],
                rows,
                title="repro-bisect check",
            )
        ]
        shown = self.records if verbose else self.failures()
        for record in shown:
            for violation in record.violations:
                lines.append(
                    f"FAIL {record.section}/{record.algorithm} on "
                    f"{record.instance} seed={record.seed}: {violation}"
                )
        counts = self.counts()
        lines.append(
            f"{counts['ok']} ok, {counts['fail']} fail, {counts['skip']} skipped "
            f"-> {'OK' if self.ok else 'FAIL'}"
        )
        return "\n".join(lines)


def _spec_for(name: str) -> AlgorithmSpec:
    return AlgorithmSpec.make(name, **_FAST_PARAMS.get(name, {}))


def _instance_object(instance: Instance, domain: str, hypergraphs: dict):
    """The object the algorithm consumes: the graph, or its 2-pin netlist."""
    if domain == "graph":
        return instance.graph
    if instance.name not in hypergraphs:
        from ..hypergraph import from_graph

        hypergraphs[instance.name] = from_graph(instance.graph)
    return hypergraphs[instance.name]


def _run_one(algorithm, target, seed: int):
    began = monotonic_time()
    result = algorithm(target, LaggedFibonacciRandom(seed))
    return result, monotonic_time() - began


def run_check(
    algorithms: Sequence[str] | None = None,
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = (10, 16),
    seeds: Sequence[int] = (0, 1, 2),
    include_exact: bool = True,
    include_metamorphic: bool = True,
    jobs: int = 2,
    cache_dir: str | None = None,
) -> CheckReport:
    """Run the full verification matrix and return the report.

    ``algorithms`` defaults to every registered name.  Instances an
    algorithm cannot structurally handle (e.g. the exact cycle solver on
    degree-3 graphs) are recorded as ``skip`` with the reason, so the
    matrix stays total: every (algorithm, instance) pair is accounted for.
    """
    names = list(algorithms) if algorithms is not None else algorithm_names()
    instances = corpus(families=families, sizes=sizes, seeds=seeds)
    report = CheckReport()
    hypergraphs: dict[str, Any] = {}
    optima: dict[str, int] = {}

    for name in names:
        info = algorithm_info(name)
        algorithm = build_algorithm(_spec_for(name))
        for instance in instances:
            if not info.supports(instance.graph):
                report.records.append(CheckRecord(
                    section="invariants",
                    algorithm=name,
                    instance=instance.name,
                    seed=instance.seed,
                    status="skip",
                    note=f"requires max degree <= {info.max_degree}, "
                    f"instance has {instance.max_degree}",
                ))
                continue
            target = _instance_object(instance, info.domain, hypergraphs)
            try:
                result, seconds = _run_one(algorithm, target, instance.seed)
            except Exception as exc:  # noqa: BLE001 - a crash IS the finding
                report.records.append(CheckRecord(
                    section="invariants",
                    algorithm=name,
                    instance=instance.name,
                    seed=instance.seed,
                    status="fail",
                    violations=(f"crash: {type(exc).__name__}: {exc}",),
                ))
                continue
            violations = check_result(target, result)
            report.records.append(CheckRecord(
                section="invariants",
                algorithm=name,
                instance=instance.name,
                seed=instance.seed,
                status="fail" if violations else "ok",
                seconds=seconds,
                cut=result.cut,
                violations=tuple(str(v) for v in violations),
            ))
            if (
                include_exact
                and not violations
                and instance.graph.num_vertices <= EXACT_MAX_VERTICES
                and instance.graph.num_vertices >= 2
            ):
                if instance.name not in optima:
                    optima[instance.name] = exact_optimum(instance.graph)
                oracle_violations = check_against_optimum(
                    name,
                    result.cut,
                    optima[instance.name],
                    context=f"{instance.name} seed={instance.seed}",
                )
                report.records.append(CheckRecord(
                    section="exact",
                    algorithm=name,
                    instance=instance.name,
                    seed=instance.seed,
                    status="fail" if oracle_violations else "ok",
                    cut=result.cut,
                    violations=tuple(str(v) for v in oracle_violations),
                    note=f"optimum={optima[instance.name]}",
                ))

    if include_metamorphic:
        _run_metamorphic(report, names, families, sizes, seeds, jobs, cache_dir)
    return report


def _metamorphic_record(report, name, instance, violations, label=""):
    report.records.append(CheckRecord(
        section="metamorphic",
        algorithm=name,
        instance=instance.name,
        seed=instance.seed,
        status="fail" if violations else "ok",
        violations=tuple(str(v) for v in violations),
        note=label,
    ))


def _run_metamorphic(
    report: CheckReport,
    names: Sequence[str],
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    jobs: int,
    cache_dir: str | None,
) -> None:
    """One representative instance per family, relations over all algorithms.

    Determinism and relabeling invariance run per algorithm; the engine
    relations (jobs equivalence, cache equivalence) run on the registry
    specs of two representative algorithms, which exercises the whole
    engine path without multiplying process-pool spawns.
    """
    probes = corpus(families=families, sizes=sizes[:1], seeds=seeds[:1])
    hypergraphs: dict[str, Any] = {}
    for instance in probes:
        _metamorphic_record(
            report, "-", instance,
            check_edge_permutation_invariance(instance.graph, seed=instance.seed),
            label="edge-permutation",
        )
    for name in names:
        info = algorithm_info(name)
        algorithm = build_algorithm(_spec_for(name))
        for instance in probes:
            if not info.supports(instance.graph):
                continue
            target = _instance_object(instance, info.domain, hypergraphs)
            _metamorphic_record(
                report, name, instance,
                check_determinism(algorithm, target, instance.seed),
                label="determinism",
            )
            if info.domain == "graph":
                _metamorphic_record(
                    report, name, instance,
                    check_relabeling_invariance(
                        algorithm, instance.graph, instance.seed
                    ),
                    label="relabeling",
                )
    engine_names = [n for n in ("kl", "ckl") if n in names] or [
        n for n in names if algorithm_info(n).domain == "graph"
    ][:1]
    graph_probes = [p for p in probes if p.family in ("gnp", "gbreg3")] or probes[:1]
    for name in engine_names:
        spec = _spec_for(name)
        for instance in graph_probes[:1]:
            _metamorphic_record(
                report, name, instance,
                check_jobs_equivalence(
                    spec, instance.graph, seeds=list(seeds)[:3] or [0], jobs=jobs
                ),
                label="jobs-equivalence",
            )
            with tempfile.TemporaryDirectory() as tmp:
                _metamorphic_record(
                    report, name, instance,
                    check_cache_equivalence(
                        spec, instance.graph, instance.seed, cache_dir or tmp
                    ),
                    label="cache-equivalence",
                )
