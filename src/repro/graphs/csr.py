"""Array-backed CSR view of a :class:`~repro.graphs.graph.Graph`.

The dict-of-dicts adjacency map is the right construction-time structure,
but its hashed label lookups dominate every profile of the KL/FM/SA inner
loops.  :class:`CSRGraph` is a frozen compressed-sparse-row snapshot of a
graph — contiguous integer vertex ids and flat ``indptr`` / ``indices`` /
``edge_weight`` / ``vertex_weight`` arrays (``array('q')``) — that the hot
kernels index instead.  It is compiled once per graph, cached on the
:class:`Graph` instance, and invalidated automatically by any mutation.

Determinism contract (what makes the CSR kernels *bitwise-equivalent* to
the dict kernels):

* vertex ids follow the graph's insertion order, so every loop that walks
  ``graph.vertices()`` — gain initialization, RNG-driven vertex draws —
  visits the same vertices in the same order on both paths;
* :attr:`CSRGraph.rank` maps each id to the position of its label in
  *sorted label order*.  The dict kernels' heaps break gain ties by
  comparing labels; the CSR kernels break them by comparing ranks, which
  orders identically.  When labels are not mutually comparable (the heaps
  of the dict path would fail on a tie anyway) ``rank`` is ``None`` and
  the label-ordering kernels fall back to the dict path.

The ``REPRO_NO_CSR=1`` environment variable is the escape hatch: it
disables every CSR fast path, which the equivalence test matrix uses to
prove both paths produce identical cuts, assignments, and traces.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Mapping
from itertools import compress
from operator import mul, ne

from .graph import Graph, Vertex

__all__ = [
    "CSRGraph",
    "cached_csr",
    "csr_cut_weight",
    "csr_enabled",
    "csr_move_gains",
    "csr_side_weights",
    "csr_view",
]


def csr_enabled() -> bool:
    """True unless the ``REPRO_NO_CSR`` escape hatch is active.

    Any non-empty value other than ``0`` disables the CSR fast paths.
    Checked at kernel entry (not import time) so tests can flip it per
    call.
    """
    return os.environ.get("REPRO_NO_CSR", "0") in ("", "0")


class CSRGraph:
    """Frozen CSR snapshot of a graph (see module docstring).

    The canonical storage is four ``array('q')`` buffers; the kernels ask
    for plain-list mirrors (:meth:`neighbor_lists`, :meth:`adjacency_maps`,
    ...) which are materialized lazily and cached, because list indexing
    avoids the int re-boxing cost of ``array`` subscripts in hot loops.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> view = csr_view(g)
    >>> view.num_vertices, view.num_edges
    (3, 2)
    >>> list(view.indptr)
    [0, 1, 3, 4]
    >>> [view.labels[i] for i in view.indices]
    ['b', 'a', 'c', 'b']
    """

    __slots__ = (
        "labels",
        "index_of",
        "rank",
        "by_rank",
        "indptr",
        "indices",
        "edge_weight",
        "vertex_weight",
        "heads",
        "num_vertices",
        "num_edges",
        "total_edge_weight",
        "total_vertex_weight",
        "max_weighted_degree",
        "unit_edge_weights",
        "unit_vertex_weights",
        "_lists",
    )

    def __init__(self, graph: Graph) -> None:
        labels = list(graph.vertices())
        n = len(labels)
        index_of: dict[Vertex, int] = {v: i for i, v in enumerate(labels)}

        indptr = array("q", [0] * (n + 1))
        indices = array("q")
        edge_weight = array("q")
        heads = array("q")
        vertex_weight = array("q", (graph.vertex_weight(v) for v in labels))

        max_wd = 0
        unit_edges = True
        for i, v in enumerate(labels):
            wd = 0
            for u, w in graph.adjacency(v).items():
                indices.append(index_of[u])
                edge_weight.append(w)
                heads.append(i)
                wd += w
                if w != 1:
                    unit_edges = False
            indptr[i + 1] = len(indices)
            if wd > max_wd:
                max_wd = wd

        try:
            by_rank = sorted(range(n), key=labels.__getitem__)
        except TypeError:
            rank = by_rank = None  # labels not mutually comparable
        else:
            rank = [0] * n
            for position, i in enumerate(by_rank):
                rank[i] = position

        self.labels = labels
        self.index_of = index_of
        self.rank = rank
        self.by_rank = by_rank
        self.indptr = indptr
        self.indices = indices
        self.edge_weight = edge_weight
        self.vertex_weight = vertex_weight
        self.heads = heads
        self.num_vertices = n
        self.num_edges = graph.num_edges
        self.total_edge_weight = graph.total_edge_weight
        self.total_vertex_weight = sum(vertex_weight)
        self.max_weighted_degree = max_wd
        self.unit_edge_weights = unit_edges
        self.unit_vertex_weights = all(w == 1 for w in vertex_weight)
        self._lists: dict[str, object] = {}

    # -- lazy plain-list mirrors for the kernels ----------------------------------

    def _list(self, name: str, build) -> list:
        cached = self._lists.get(name)
        if cached is None:
            cached = build()
            self._lists[name] = cached
        return cached

    def neighbor_lists(self) -> list[list[int]]:
        """Per-vertex neighbor-id lists (``indices`` sliced by ``indptr``)."""

        def build() -> list[list[int]]:
            flat = list(self.indices)
            ptr = self.indptr
            return [flat[ptr[i] : ptr[i + 1]] for i in range(self.num_vertices)]

        return self._list("neighbors", build)

    def weight_lists(self) -> list[list[int]]:
        """Per-vertex edge-weight lists, parallel to :meth:`neighbor_lists`."""

        def build() -> list[list[int]]:
            flat = list(self.edge_weight)
            ptr = self.indptr
            return [flat[ptr[i] : ptr[i + 1]] for i in range(self.num_vertices)]

        return self._list("weights", build)

    def adjacency_maps(self) -> list[dict[int, int]]:
        """Per-vertex ``neighbor id -> edge weight`` dicts (O(1) pair lookups)."""

        def build() -> list[dict[int, int]]:
            nbrs = self.neighbor_lists()
            wts = self.weight_lists()
            return [dict(zip(nbrs[i], wts[i])) for i in range(self.num_vertices)]

        return self._list("adjacency", build)

    def weighted_degrees(self) -> list[int]:
        """Per-vertex sums of incident edge weights."""

        def build() -> list[int]:
            if self.unit_edge_weights:
                ptr = self.indptr
                return [ptr[i + 1] - ptr[i] for i in range(self.num_vertices)]
            wts = self.weight_lists()
            return [sum(row) for row in wts]

        return self._list("weighted_degrees", build)

    def vertex_weight_list(self) -> list[int]:
        """Plain-list mirror of the ``vertex_weight`` array."""
        return self._list("vertex_weights", lambda: list(self.vertex_weight))

    def head_tail_lists(self) -> tuple[list[int], list[int], list[int]]:
        """``(heads, indices, edge_weight)`` as lists — one row per directed slot."""

        def build() -> tuple[list[int], list[int], list[int]]:
            return list(self.heads), list(self.indices), list(self.edge_weight)

        return self._list("head_tail", build)

    # -- assignment translation ---------------------------------------------------

    def sides_list(self, assignment: Mapping[Vertex, int]) -> list[int]:
        """The label-keyed side map as an id-indexed list."""
        get = assignment.__getitem__
        return [get(v) for v in self.labels]

    def assignment_dict(self, sides: list[int]) -> dict[Vertex, int]:
        """An id-indexed side list as a label-keyed dict (insertion order)."""
        return dict(zip(self.labels, sides))


def csr_view(graph: Graph) -> CSRGraph:
    """The graph's CSR snapshot, compiling and caching it on first use."""
    derived = graph._derived
    csr = derived.get("csr")
    if csr is None:
        from ..obs import counter, histogram, obs_enabled  # cycle-safe, cheap
        from ..obs.clock import monotonic_time

        if obs_enabled():
            began = monotonic_time()
            csr = CSRGraph(graph)
            histogram("csr_compile_seconds").observe(monotonic_time() - began)
            counter("csr_compiles_total").inc()
        else:
            csr = CSRGraph(graph)
        derived["csr"] = csr
    return csr


def cached_csr(graph: Graph) -> CSRGraph | None:
    """The cached CSR snapshot, or ``None`` — never triggers a compile.

    Fast-path helpers (:func:`csr_cut_weight` callers like
    ``cut_weight``) use this so that casual one-off queries on a graph
    no one is partitioning do not pay the compile.
    """
    return graph._derived.get("csr")


def csr_move_gains(csr: CSRGraph, sides: list[int]) -> list[int]:
    """Per-vertex move gains (cut reduction of flipping each vertex alone).

    The shared gain-initialization of the KL and FM kernels; inner sums run
    at C level (``sum(map(...))``).
    """
    n = csr.num_vertices
    sides_get = sides.__getitem__
    nbrs = csr.neighbor_lists()
    gains = [0] * n
    if csr.unit_edge_weights:
        for i in range(n):
            row = nbrs[i]
            s1 = sum(map(sides_get, row))
            gains[i] = 2 * s1 - len(row) if sides[i] == 0 else len(row) - 2 * s1
    else:
        wts = csr.weight_lists()
        wdeg = csr.weighted_degrees()
        for i in range(n):
            s1 = sum(map(mul, wts[i], map(sides_get, nbrs[i])))
            gains[i] = 2 * s1 - wdeg[i] if sides[i] == 0 else wdeg[i] - 2 * s1
    return gains


def csr_cut_weight(csr: CSRGraph, sides: list[int]) -> int:
    """Cut weight of the partition ``sides`` (id-indexed 0/1 list).

    Scans the directed-slot arrays with C-level ``map``/``compress``
    pipelines; every directed edge is counted once per endpoint, hence the
    final halving.
    """
    heads, tails, weights = csr.head_tail_lists()
    get = sides.__getitem__
    crossing = map(ne, map(get, heads), map(get, tails))
    if csr.unit_edge_weights:
        return sum(crossing) // 2
    return sum(compress(weights, crossing)) // 2


def csr_side_weights(csr: CSRGraph, sides: list[int]) -> tuple[int, int]:
    """Total vertex weight on side 0 and side 1 of ``sides``."""
    if csr.unit_vertex_weights:
        w1 = sum(sides)
        return csr.num_vertices - w1, w1
    w1 = sum(compress(csr.vertex_weight_list(), sides))
    return csr.total_vertex_weight - w1, w1
