"""Graph substrate: data structure, generators, traversal, properties, I/O."""

from .csr import CSRGraph, cached_csr, csr_enabled, csr_view
from .graph import Graph, graph_fingerprint, vertex_token
from .properties import (
    degree_histogram,
    degree_statistics,
    expected_gnp_degree,
    gnp_probability_for_degree,
    is_regular,
    is_simple,
    max_degree,
    min_degree,
    planted_probability_for_degree,
    random_bisection_expected_cut,
)
from .traversal import (
    bfs_layers,
    bfs_order,
    connected_components,
    cycle_decomposition,
    dfs_order,
    is_connected,
    shortest_path_lengths,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "cached_csr",
    "csr_enabled",
    "csr_view",
    "graph_fingerprint",
    "vertex_token",
    "bfs_order",
    "bfs_layers",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "cycle_decomposition",
    "degree_histogram",
    "degree_statistics",
    "min_degree",
    "max_degree",
    "is_regular",
    "is_simple",
    "expected_gnp_degree",
    "gnp_probability_for_degree",
    "planted_probability_for_degree",
    "random_bisection_expected_cut",
]
