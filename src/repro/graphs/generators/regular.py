"""Random graphs with prescribed degree sequences (configuration model).

This is the substrate for the ``Gbreg(2n, b, d)`` model: each side of a
``Gbreg`` graph is a uniform-ish random *simple* graph on its residual
degree sequence.  Sampling uses the pairing (configuration) model followed
by degree-preserving edge-swap repair of self-loops and parallel edges,
with whole-pairing restarts as a fallback — the standard practical recipe
for small fixed degrees.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping

from ...rng import resolve_rng
from ..graph import Graph

__all__ = ["sample_with_degrees", "random_regular_graph"]

Vertex = Hashable


def _pair_key(u, v) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


def _repair_pairing(
    pairs: list[tuple], counts: dict[tuple, int], rng: random.Random, max_attempts: int
) -> bool:
    """Edge-swap away self-loops and duplicate pairs in place.

    A bad pair ``(u, v)`` (loop, or second+ copy of an edge) is fixed by
    picking another pair ``(x, y)`` and rewiring to ``(u, x), (v, y)`` when
    that creates neither loops nor duplicates.  Degree sequence is
    preserved by construction.  Returns True on full repair.
    """

    def is_bad(i: int) -> bool:
        u, v = pairs[i]
        return u == v or counts[_pair_key(u, v)] > 1

    bad = {i for i in range(len(pairs)) if is_bad(i)}
    attempts = 0
    while bad and attempts < max_attempts:
        attempts += 1
        i = next(iter(bad))
        u, v = pairs[i]
        j = rng.randrange(len(pairs))
        if j == i:
            continue
        x, y = pairs[j]
        # Randomize orientation of the partner pair so both rewirings are reachable.
        if rng.random() < 0.5:
            x, y = y, x
        if u == x or v == y:
            continue
        if counts.get(_pair_key(u, x), 0) or counts.get(_pair_key(v, y), 0):
            continue
        # Rewire (u,v),(x,y) -> (u,x),(v,y).
        for a, b in ((u, v), (x, y)):
            counts[_pair_key(a, b)] -= 1
        for a, b in ((u, x), (v, y)):
            counts[_pair_key(a, b)] = counts.get(_pair_key(a, b), 0) + 1
        pairs[i] = (u, x)
        pairs[j] = (v, y)
        for k in (i, j):
            if is_bad(k):
                bad.add(k)
            else:
                bad.discard(k)
    return not bad


def sample_with_degrees(
    degrees: Mapping[Vertex, int],
    rng: random.Random | int | None = None,
    max_restarts: int = 100,
) -> Graph:
    """Sample a random simple graph whose vertex ``v`` has degree ``degrees[v]``.

    Vertices with degree 0 are included as isolated vertices.  Raises
    ``ValueError`` for an odd degree sum or negative degrees, and
    ``RuntimeError`` if no simple realization is found within
    ``max_restarts`` pairings (which, for a graphical sequence of bounded
    degree, is astronomically unlikely).
    """
    rng = resolve_rng(rng)
    stubs: list[Vertex] = []
    for v, d in degrees.items():
        if d < 0:
            raise ValueError(f"negative degree {d} for vertex {v!r}")
        if d >= len(degrees):
            raise ValueError(f"degree {d} of {v!r} exceeds n-1 = {len(degrees) - 1}")
        stubs.extend([v] * d)
    if len(stubs) % 2:
        raise ValueError("degree sum must be even")

    for _ in range(max_restarts):
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        counts: dict[tuple, int] = {}
        for u, v in pairs:
            key = _pair_key(u, v)
            counts[key] = counts.get(key, 0) + 1
        if _repair_pairing(pairs, counts, rng, max_attempts=200 * len(pairs) + 2000):
            g = Graph()
            for v in degrees:
                g.add_vertex(v)
            for u, v in pairs:
                g.add_edge(u, v)
            return g
    raise RuntimeError(
        f"could not realize degree sequence as a simple graph in {max_restarts} restarts "
        "(is the sequence graphical?)"
    )


def random_regular_graph(
    num_vertices: int, degree: int, rng: random.Random | int | None = None
) -> Graph:
    """Sample a random simple ``degree``-regular graph on ``num_vertices`` vertices."""
    if num_vertices * degree % 2:
        raise ValueError("num_vertices * degree must be even")
    if degree >= num_vertices:
        raise ValueError("degree must be less than num_vertices")
    return sample_with_degrees({v: degree for v in range(num_vertices)}, rng)
