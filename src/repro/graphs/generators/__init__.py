"""Graph generators: the paper's three random models plus special families.

* :func:`gnp` — ``Gnp(2n, p)`` (Erdos-Renyi),
* :func:`g2set` — ``G2set(2n, pA, pB, bis)`` (planted bisection),
* :func:`gbreg` — ``Gbreg(2n, b, d)`` (regular with planted bisection width,
  the [BCLS87] model most of the paper's experiments use),
* special families: grids, ladders, binary trees, cycles, ... (Section VI).
"""

from .bregular import BisectionRegularGraph, feasible_bisection_widths, gbreg
from .gnp import gnp, gnp_with_degree
from .planted import PlantedGraph, g2set, g2set_with_degree
from .regular import random_regular_graph, sample_with_degrees
from .special import (
    binary_tree,
    caterpillar_graph,
    circular_ladder_graph,
    complete_binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_cycles,
    grid_graph,
    hypercube_graph,
    ladder_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from .trees import prufer_decode, random_tree

__all__ = [
    "gnp",
    "gnp_with_degree",
    "g2set",
    "g2set_with_degree",
    "PlantedGraph",
    "gbreg",
    "BisectionRegularGraph",
    "feasible_bisection_widths",
    "random_regular_graph",
    "sample_with_degrees",
    "path_graph",
    "cycle_graph",
    "ladder_graph",
    "circular_ladder_graph",
    "grid_graph",
    "binary_tree",
    "complete_binary_tree",
    "disjoint_cycles",
    "complete_graph",
    "complete_bipartite_graph",
    "star_graph",
    "caterpillar_graph",
    "torus_graph",
    "hypercube_graph",
    "random_tree",
    "prufer_decode",
]
