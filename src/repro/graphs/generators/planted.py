"""The planted-bisection model ``G2set(2n, pA, pB, bis)``.

Paper, Section IV: split the vertices into sets ``A`` and ``B`` of size
``n`` each; place intra-``A`` edges with probability ``pA`` and intra-``B``
edges with probability ``pB``; then place *exactly* ``bis`` edges between
the sides, uniformly at random.  ``bis`` is thus an upper bound on the
bisection width.

The paper notes the model's weakness at low densities: with small average
degree (< 4) and large expected bisection, the true minimum bisection is
often much smaller than ``bis`` (and for average degree below two it is
usually zero).  The ``Gbreg`` model exists to fix this; ``G2set`` is still
reproduced for the appendix tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...rng import resolve_rng
from ..graph import Graph
from .gnp import gnp

__all__ = ["g2set", "g2set_with_degree", "PlantedGraph"]


@dataclass(frozen=True)
class PlantedGraph:
    """A sampled planted-bisection graph plus its planted partition.

    ``planted_cut`` is the number of cross edges actually placed (always
    equal to the requested ``bis``); the planted sides are the test oracle
    for "did the heuristic find the planted bisection".
    """

    graph: Graph
    side_a: frozenset
    side_b: frozenset
    planted_cut: int


def g2set(
    num_vertices: int,
    p_a: float,
    p_b: float,
    bis: int,
    rng: random.Random | int | None = None,
) -> PlantedGraph:
    """Sample ``G2set(2n, pA, pB, bis)``.

    Side ``A`` is vertices ``0..n-1``, side ``B`` is ``n..2n-1``.
    Raises ``ValueError`` for infeasible parameters (odd ``2n``,
    ``bis > n**2``, probabilities outside ``[0, 1]``).
    """
    if num_vertices < 2 or num_vertices % 2:
        raise ValueError("num_vertices must be even and at least 2")
    n = num_vertices // 2
    if not 0.0 <= p_a <= 1.0 or not 0.0 <= p_b <= 1.0:
        raise ValueError("probabilities must be in [0, 1]")
    if not 0 <= bis <= n * n:
        raise ValueError(f"bis must be in [0, {n * n}], got {bis}")
    rng = resolve_rng(rng)

    g = Graph()
    for v in range(num_vertices):
        g.add_vertex(v)

    # Intra-side edges: sample each side as an independent Gnp and copy in.
    for offset, p in ((0, p_a), (n, p_b)):
        side = gnp(n, p, rng)
        for u, v, _ in side.edges():
            g.add_edge(offset + u, offset + v)

    # Exactly `bis` distinct cross edges, uniform over the n*n cross pairs.
    placed: set[tuple[int, int]] = set()
    while len(placed) < bis:
        a = rng.randrange(n)
        b = n + rng.randrange(n)
        if (a, b) not in placed:
            placed.add((a, b))
            g.add_edge(a, b)

    return PlantedGraph(
        graph=g,
        side_a=frozenset(range(n)),
        side_b=frozenset(range(n, num_vertices)),
        planted_cut=bis,
    )


def g2set_with_degree(
    num_vertices: int,
    avg_degree: float,
    bis: int,
    rng: random.Random | int | None = None,
) -> PlantedGraph:
    """Sample ``G2set`` with ``pA = pB`` chosen for a target average degree.

    This matches how the appendix tables are parameterized ("G2set(5000,
    pA, pB, b) with average degree 2.5" etc.).
    """
    from ..properties import planted_probability_for_degree

    p = planted_probability_for_degree(num_vertices, avg_degree, bis)
    return g2set(num_vertices, p, p, bis, rng)
