"""The Erdos-Renyi random graph model ``Gnp(2n, p)``.

Paper, Section IV: "The graph model Gnp(2n, p) contains all simple graphs
on 2n vertices, in which an edge between any two vertices is present with
probability p, independent of any other edge."

The paper criticizes this model for bisection benchmarking: for fixed
``p`` the minimum cut contains about half the edges, so a random partition
is nearly optimal and the model "may not distinguish good heuristics from
mediocre ones".  It is included here both as a substrate for ``G2set`` and
to reproduce the ``Gnp(5000, p)`` / ``Gnp(2000, p)`` appendix tables.
"""

from __future__ import annotations

import math
import random

from ...rng import resolve_rng
from ..graph import Graph

__all__ = ["gnp", "gnp_with_degree"]


def gnp(num_vertices: int, p: float, rng: random.Random | int | None = None) -> Graph:
    """Sample ``G(num_vertices, p)``.

    Uses geometric skipping (Batagelj–Brandes) so the cost is
    ``O(n + m)`` rather than ``O(n^2)`` — essential for the sparse graphs
    (average degree ≤ 4 at 5000 vertices) that the paper's tables sweep.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be nonnegative")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = resolve_rng(rng)

    g = Graph()
    for v in range(num_vertices):
        g.add_vertex(v)
    if p == 0.0 or num_vertices < 2:
        return g
    if p == 1.0:
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                g.add_edge(u, v)
        return g

    # Iterate over the n*(n-1)/2 potential edges in row-major order,
    # jumping ahead by geometrically-distributed gaps.
    log_q = math.log(1.0 - p)
    u, v = 1, -1
    while u < num_vertices:
        r = rng.random()
        # Gap to the next present edge; r is in [0, 1) so 1 - r > 0.
        v += 1 + int(math.log(1.0 - r) / log_q)
        while v >= u and u < num_vertices:
            v -= u
            u += 1
        if u < num_vertices:
            g.add_edge(u, v)
    return g


def gnp_with_degree(
    num_vertices: int, avg_degree: float, rng: random.Random | int | None = None
) -> Graph:
    """Sample ``Gnp`` with ``p`` chosen to hit the requested average degree.

    Convenience for the appendix ``Gnp`` tables, which are parameterized by
    average degree rather than ``p``.
    """
    from ..properties import gnp_probability_for_degree

    p = gnp_probability_for_degree(num_vertices, avg_degree)
    return gnp(num_vertices, p, rng)
