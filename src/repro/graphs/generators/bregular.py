"""The ``Gbreg(2n, b, d)`` model: random d-regular graphs with planted bisection b.

Paper, Section IV (model introduced in [BCLS87]): "This class of graphs
consists of all simple regular graphs with 2n nodes, where each node has
degree d and the graph has bisection width b."  It is the paper's primary
benchmark model because, unlike ``Gnp`` and ``G2set``, the planted
bisection is (with high probability, for b well below the expected random
cut) the unique minimum bisection — so heuristics can be scored against a
known target.

Construction: plant exactly ``b`` cross edges between sides ``A`` and
``B`` (no vertex taking more than ``d`` of them), then complete each side
to the residual degree sequence with the configuration model
(:mod:`.regular`).  The result is exactly d-regular with cut ``b`` across
the planted sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...rng import resolve_rng
from ..graph import Graph
from .regular import sample_with_degrees

__all__ = ["gbreg", "BisectionRegularGraph", "feasible_bisection_widths"]


@dataclass(frozen=True)
class BisectionRegularGraph:
    """A sampled ``Gbreg`` graph plus its planted bisection metadata."""

    graph: Graph
    side_a: frozenset
    side_b: frozenset
    planted_width: int
    degree: int


def feasible_bisection_widths(num_vertices: int, degree: int, limit: int) -> list[int]:
    """Planted widths ``b <= limit`` compatible with ``Gbreg(2n, b, d)`` parity.

    Each side must absorb ``n*d - b`` intra-side stubs, which must be even;
    hence ``b ≡ n*d (mod 2)``.  Benches use this to sweep valid ``b``.
    """
    if num_vertices % 2:
        raise ValueError("num_vertices must be even")
    n = num_vertices // 2
    parity = (n * degree) % 2
    return [b for b in range(limit + 1) if b % 2 == parity]


def gbreg(
    num_vertices: int,
    b: int,
    d: int,
    rng: random.Random | int | None = None,
    max_restarts: int = 100,
) -> BisectionRegularGraph:
    """Sample ``Gbreg(2n, b, d)``.

    Side ``A`` is vertices ``0..n-1``, side ``B`` is ``n..2n-1``; the
    planted cut is exactly ``b``.  Raises ``ValueError`` on infeasible
    parameters: odd ``2n``, ``d >= n``, ``b > n*d`` (not enough stubs),
    ``b > n*n`` (not enough distinct cross pairs), or the parity condition
    ``b ≢ n*d (mod 2)`` (see :func:`feasible_bisection_widths`).
    """
    if num_vertices < 2 or num_vertices % 2:
        raise ValueError("num_vertices must be even and at least 2")
    n = num_vertices // 2
    if d < 0 or d >= n:
        raise ValueError(f"degree must be in [0, n-1] = [0, {n - 1}], got {d}")
    if not 0 <= b <= min(n * d, n * n):
        raise ValueError(f"b must be in [0, {min(n * d, n * n)}], got {b}")
    if (n * d - b) % 2:
        raise ValueError(
            f"infeasible parity: n*d - b = {n * d - b} must be even "
            f"(choose b with b % 2 == {(n * d) % 2})"
        )
    rng = resolve_rng(rng)

    side_a = list(range(n))
    side_b = list(range(n, num_vertices))

    for _ in range(max_restarts):
        # Plant exactly b distinct cross edges, capping cross-degree at d so
        # the residual intra-side degrees stay nonnegative.
        cross: set[tuple[int, int]] = set()
        cross_degree = dict.fromkeys(range(num_vertices), 0)
        stalled = False
        attempts = 0
        while len(cross) < b:
            attempts += 1
            if attempts > 200 * max(b, 1) + 2000:
                stalled = True
                break
            u = rng.randrange(n)
            v = n + rng.randrange(n)
            if (u, v) in cross or cross_degree[u] >= d or cross_degree[v] >= d:
                continue
            cross.add((u, v))
            cross_degree[u] += 1
            cross_degree[v] += 1
        if stalled:
            continue

        try:
            part_a = sample_with_degrees(
                {v: d - cross_degree[v] for v in side_a}, rng, max_restarts=max_restarts
            )
            part_b = sample_with_degrees(
                {v: d - cross_degree[v] for v in side_b}, rng, max_restarts=max_restarts
            )
        except RuntimeError:
            continue  # unlucky residual sequence; replant and retry

        g = Graph()
        for v in range(num_vertices):
            g.add_vertex(v)
        for part in (part_a, part_b):
            for u, v, _ in part.edges():
                g.add_edge(u, v)
        for u, v in cross:
            g.add_edge(u, v)
        return BisectionRegularGraph(
            graph=g,
            side_a=frozenset(side_a),
            side_b=frozenset(side_b),
            planted_width=b,
            degree=d,
        )

    raise RuntimeError(f"could not sample Gbreg({num_vertices}, {b}, {d}) in {max_restarts} tries")
