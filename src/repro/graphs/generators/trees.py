"""Uniformly random labelled trees (Prüfer-sequence decoding).

Binary trees are the paper's tree family; uniformly random trees are the
natural generalization for stress-testing tree bisection (they mix long
paths with high-degree hubs).  By Cayley's formula there are ``n^(n-2)``
labelled trees on ``n`` vertices; decoding a uniformly random Prüfer
sequence samples exactly uniformly among them.
"""

from __future__ import annotations

import random
from heapq import heapify, heappop, heappush

from ...rng import resolve_rng
from ..graph import Graph

__all__ = ["random_tree", "prufer_decode"]


def prufer_decode(sequence: list[int], n: int) -> Graph:
    """Decode a Prüfer sequence of length ``n - 2`` into its tree.

    Vertices are ``0..n-1``; raises ``ValueError`` on malformed input.
    """
    if n < 2:
        raise ValueError("a tree needs at least two vertices")
    if len(sequence) != n - 2:
        raise ValueError(f"sequence length must be n-2 = {n - 2}, got {len(sequence)}")
    if any(not 0 <= s < n for s in sequence):
        raise ValueError("sequence entries must be vertex labels 0..n-1")

    remaining_degree = [1] * n
    for s in sequence:
        remaining_degree[s] += 1

    leaves = [v for v in range(n) if remaining_degree[v] == 1]
    heapify(leaves)

    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for s in sequence:
        leaf = heappop(leaves)
        g.add_edge(leaf, s)
        remaining_degree[s] -= 1
        if remaining_degree[s] == 1:
            heappush(leaves, s)
    last_two = [heappop(leaves), heappop(leaves)]
    g.add_edge(last_two[0], last_two[1])
    return g


def random_tree(n: int, rng: random.Random | int | None = None) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices."""
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    rng = resolve_rng(rng)
    if n == 1:
        g = Graph()
        g.add_vertex(0)
        return g
    if n == 2:
        return Graph.from_edges([(0, 1)])
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return prufer_decode(sequence, n)
