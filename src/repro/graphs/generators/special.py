"""Deterministic special-graph families used in the paper's experiments.

Section VI tests the heuristics on grids, ladders, and binary trees
(Table 1 and the appendix "special graphs" tables); the ladder graph
(Fig. 3) is the classic adversarial instance for Kernighan–Lin.  Degree-2
``Gbreg`` graphs are disjoint unions of chordless cycles, so cycle
collections are also provided.

Known optimal bisection widths (used as test oracles):

* ladder with ``2k`` vertices, ``k`` even: 2 (cut between two rungs),
* circular ladder: 4,
* ``r x c`` grid with ``r*c`` even: ``min(r, c)`` (a straight cut along the
  shorter dimension; for even split it must fall between rows/columns),
* even cycle: 2,
* complete graph ``K_{2n}``: ``n^2``,
* complete bipartite ``K_{n,n}`` split across the sides: ``n^2 / 2`` region.
"""

from __future__ import annotations

from ..graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "ladder_graph",
    "circular_ladder_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree",
    "complete_binary_tree",
    "disjoint_cycles",
    "complete_graph",
    "complete_bipartite_graph",
    "star_graph",
    "caterpillar_graph",
]


def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise ValueError("path needs at least one vertex")
    return Graph.from_edges(((i, i + 1) for i in range(n - 1)), vertices=range(n))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle needs at least three vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(edges)


def ladder_graph(rungs: int) -> Graph:
    """Ladder with ``rungs`` rungs (``2 * rungs`` vertices).

    Vertices ``(0, i)`` and ``(1, i)`` are flattened to ``i`` and
    ``rungs + i``: two parallel paths (rails) joined by a rung at each
    position — the Fig. 3 family on which plain Kernighan–Lin fails badly.
    """
    if rungs < 1:
        raise ValueError("ladder needs at least one rung")
    g = Graph()
    for i in range(rungs):
        g.add_edge(i, rungs + i)  # rung
        if i + 1 < rungs:
            g.add_edge(i, i + 1)  # top rail
            g.add_edge(rungs + i, rungs + i + 1)  # bottom rail
    return g


def circular_ladder_graph(rungs: int) -> Graph:
    """Ladder whose rails are closed into cycles (the prism graph)."""
    if rungs < 3:
        raise ValueError("circular ladder needs at least three rungs")
    g = ladder_graph(rungs)
    g.add_edge(0, rungs - 1)
    g.add_edge(rungs, 2 * rungs - 1)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid; vertex ``(r, c)`` is flattened to ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_vertex(v)
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid with wraparound in both dimensions (4-regular).

    The standard VLSI/NoC mesh-with-wraparound topology; for even
    dimensions its bisection width is ``2 * min(rows, cols)`` (the
    straight cut crosses each wrapped row/column twice).
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3 (else parallel edges)")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` vertices.

    Vertices are bit labels; edges join labels at Hamming distance 1.
    Bisection width is exactly ``2^(dimension-1)`` (cut one coordinate),
    a classic sanity target for bisection heuristics.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    g = Graph()
    n = 1 << dimension
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u)
    return g


def binary_tree(n: int) -> Graph:
    """Binary tree on ``n`` vertices in heap order: ``i`` is joined to ``2i+1``, ``2i+2``.

    For ``n = 2^h - 1`` this is the complete binary tree of height ``h``;
    other ``n`` give the left-filled ("almost complete") tree, which is how
    even vertex counts (as in the paper's tables) are realized.
    """
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    g = Graph()
    g.add_vertex(0)
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                g.add_edge(i, child)
    return g


def complete_binary_tree(height: int) -> Graph:
    """Complete binary tree of the given height (``2^height - 1`` vertices)."""
    if height < 1:
        raise ValueError("height must be positive")
    return binary_tree(2**height - 1)


def disjoint_cycles(sizes: list[int]) -> Graph:
    """Disjoint union of cycles with the given sizes (each >= 3).

    This is the shape of every ``Gbreg(2n, b, 2)`` graph (paper Section VI:
    "graphs of degree two must consist only of a collection of chordless
    cycles"), whose optimal bisection is at most 2.
    """
    g = Graph()
    offset = 0
    for size in sizes:
        if size < 3:
            raise ValueError("each cycle needs at least three vertices")
        for i in range(size):
            g.add_edge(offset + i, offset + (i + 1) % size)
        offset += size
    return g


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    if n < 1:
        raise ValueError("complete graph needs at least one vertex")
    g = Graph()
    g.add_vertex(0)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}``; left side is ``0..a-1``."""
    if a < 1 or b < 1:
        raise ValueError("both sides need at least one vertex")
    g = Graph()
    for i in range(a):
        for j in range(b):
            g.add_edge(i, a + j)
    return g


def star_graph(leaves: int) -> Graph:
    """Star with the given number of leaves (center is vertex 0)."""
    if leaves < 1:
        raise ValueError("star needs at least one leaf")
    return Graph.from_edges((0, i) for i in range(1, leaves + 1))


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """Caterpillar: a path of ``spine`` vertices, each with pendant legs.

    A sparse, tree-like stress case (average degree < 2 for long legs),
    complementing the paper's binary trees.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("spine must be positive, legs nonnegative")
    g = path_graph(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(s, nxt)
            nxt += 1
    return g
