"""Graph serialization: simple edge-list and DIMACS-like formats.

Two formats are supported:

* **edge list** (``.edges``): one ``u v [weight]`` triple per line, with
  optional ``# vertex <v> <weight>`` directives for isolated or weighted
  vertices and ``#``-prefixed comments.
* **DIMACS** (``.dimacs``/``.col`` style): the classic
  ``p edge <n> <m>`` header with ``e u v [w]`` edge lines and optional
  ``n v w`` vertex-weight lines.  Vertices are 1-based in the file and
  0-based in memory, matching common partitioning tool conventions.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_dimacs",
    "read_dimacs",
    "read_csv_adjacency",
    "write_csv_adjacency",
    "graph_to_string",
    "graph_from_string",
]


def _open_for(target, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


# -- edge list ---------------------------------------------------------------------


def write_edge_list(graph: Graph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in edge-list format to a path or text stream."""
    stream, owned = _open_for(target, "w")
    try:
        stream.write(f"# repro edge list |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        covered = set()
        for u, v, w in graph.edges():
            covered.add(u)
            covered.add(v)
            if w == 1:
                stream.write(f"{u} {v}\n")
            else:
                stream.write(f"{u} {v} {w}\n")
        for v in graph.vertices():
            weight = graph.vertex_weight(v)
            if v not in covered or weight != 1:
                stream.write(f"# vertex {v} {weight}\n")
    finally:
        if owned:
            stream.close()


def read_edge_list(source: str | Path | TextIO) -> Graph:
    """Read an edge-list file written by :func:`write_edge_list`.

    Vertex labels are parsed as ``int`` when possible, else kept as strings.
    """
    stream, owned = _open_for(source, "r")

    def parse_label(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    try:
        g = Graph()
        for line in stream:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 3 and parts[0] == "vertex":
                    g.add_vertex(parse_label(parts[1]), int(parts[2]))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"malformed edge line: {line!r}")
            u, v = parse_label(parts[0]), parse_label(parts[1])
            w = int(parts[2]) if len(parts) == 3 else 1
            g.add_edge(u, v, w)
        return g
    finally:
        if owned:
            stream.close()


# -- DIMACS ------------------------------------------------------------------------


def write_dimacs(graph: Graph, target: str | Path | TextIO, comment: str = "") -> None:
    """Write ``graph`` in DIMACS format.

    Graphs whose vertices are already ``0..n-1`` are written as-is (so the
    round-trip is exact); any other labels are relabeled to ``0..n-1`` in
    insertion order.
    """
    if set(graph.vertices()) == set(range(graph.num_vertices)):
        relabeled, mapping = graph, {}
    else:
        relabeled, mapping = graph.relabeled()
    stream, owned = _open_for(target, "w")
    try:
        if comment:
            for line in comment.splitlines():
                stream.write(f"c {line}\n")
        stream.write(f"p edge {relabeled.num_vertices} {relabeled.num_edges}\n")
        for v in relabeled.vertices():
            w = relabeled.vertex_weight(v)
            if w != 1:
                stream.write(f"n {v + 1} {w}\n")
        for u, v, w in relabeled.edges():
            if w == 1:
                stream.write(f"e {u + 1} {v + 1}\n")
            else:
                stream.write(f"e {u + 1} {v + 1} {w}\n")
    finally:
        if owned:
            stream.close()
    # mapping intentionally discarded: DIMACS is a canonical 0..n-1 dump.
    del mapping


def read_dimacs(source: str | Path | TextIO) -> Graph:
    """Read a DIMACS ``p edge`` file; returns a graph on vertices ``0..n-1``."""
    stream, owned = _open_for(source, "r")
    try:
        g = Graph()
        declared_edges = None
        for line in stream:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind == "p":
                if len(parts) != 4 or parts[1] not in ("edge", "col"):
                    raise ValueError(f"malformed problem line: {line!r}")
                n, declared_edges = int(parts[2]), int(parts[3])
                for v in range(n):
                    g.add_vertex(v)
            elif kind == "n":
                g.add_vertex(int(parts[1]) - 1, int(parts[2]))
            elif kind == "e":
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                w = int(parts[3]) if len(parts) == 4 else 1
                g.add_edge(u, v, w)
            else:
                raise ValueError(f"unknown DIMACS line kind {kind!r}: {line!r}")
        if declared_edges is not None and g.num_edges != declared_edges:
            raise ValueError(
                f"DIMACS header declares {declared_edges} edges, file has {g.num_edges}"
            )
        return g
    finally:
        if owned:
            stream.close()


# -- CSV adjacency matrix ----------------------------------------------------------


def _parse_csv_label(token: str):
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        return token


def read_csv_adjacency(source: str | Path | TextIO) -> Graph:
    """Read a CSV adjacency matrix (GCLI convention) into a graph.

    The first row and first column (after the blank corner cell) list the
    node ids; a non-empty, non-zero cell ``(i, j)`` creates the edge
    ``{i, j}`` with the cell's (integer) value as its weight.  The matrix
    may be full or triangular: when both halves carry a value they must
    agree, or the file is rejected.  Nonzero diagonal cells are rejected
    (self-loops are not representable).
    """
    import csv

    stream, owned = _open_for(source, "r")
    try:
        rows = [row for row in csv.reader(stream) if any(cell.strip() for cell in row)]
    finally:
        if owned:
            stream.close()
    if not rows:
        raise ValueError("CSV adjacency matrix is empty")
    header = [_parse_csv_label(cell) for cell in rows[0][1:]]
    if len(set(header)) != len(header):
        raise ValueError("CSV adjacency header repeats a node id")
    g = Graph()
    for label in header:
        g.add_vertex(label)
    seen: dict[tuple, int] = {}
    for row in rows[1:]:
        row_label = _parse_csv_label(row[0])
        if row_label not in g:
            raise ValueError(f"CSV row id {row_label!r} is not in the header row")
        for column, cell in enumerate(row[1:]):
            cell = cell.strip()
            if not cell or cell == "0":
                continue
            try:
                weight = int(cell)
            except ValueError:
                raise ValueError(
                    f"CSV cell ({row_label!r}, {header[column]!r}) is not an "
                    f"integer weight: {cell!r}"
                ) from None
            column_label = header[column]
            if column_label == row_label:
                raise ValueError(
                    f"CSV diagonal cell for {row_label!r} is nonzero "
                    "(self-loops are not allowed)"
                )
            key = (min(str(row_label), str(column_label)),
                   max(str(row_label), str(column_label)))
            if key in seen:
                if seen[key] != weight:
                    raise ValueError(
                        f"CSV cells for edge {key} disagree: "
                        f"{seen[key]} vs {weight}"
                    )
                continue
            seen[key] = weight
            g.add_edge(row_label, column_label, weight)
    return g


def write_csv_adjacency(graph: Graph, target: str | Path | TextIO) -> None:
    """Write ``graph`` as a full CSV adjacency matrix (GCLI convention)."""
    import csv

    stream, owned = _open_for(target, "w")
    try:
        writer = csv.writer(stream)
        order = list(graph.vertices())
        writer.writerow([""] + [str(v) for v in order])
        for u in order:
            writer.writerow(
                [str(u)] + [str(graph.edge_weight(u, v)) for v in order]
            )
    finally:
        if owned:
            stream.close()


# -- strings (convenience for tests/doctests) ---------------------------------------


def graph_to_string(graph: Graph, fmt: str = "edges") -> str:
    """Serialize a graph to a string in ``"edges"`` or ``"dimacs"`` format."""
    buf = _io.StringIO()
    if fmt == "edges":
        write_edge_list(graph, buf)
    elif fmt == "dimacs":
        write_dimacs(graph, buf)
    else:
        raise ValueError(f"unknown format {fmt!r}")
    return buf.getvalue()


def graph_from_string(text: str, fmt: str = "edges") -> Graph:
    """Parse a graph from a string in ``"edges"`` or ``"dimacs"`` format."""
    buf = _io.StringIO(text)
    if fmt == "edges":
        return read_edge_list(buf)
    if fmt == "dimacs":
        return read_dimacs(buf)
    raise ValueError(f"unknown format {fmt!r}")
