"""Core graph data structure.

:class:`Graph` is an undirected graph with

* integer-weighted edges (contraction merges parallel edges by summing
  weights — plain graphs just use weight 1), and
* integer vertex weights (a contracted vertex carries the total weight of
  the original vertices it represents; plain graphs use weight 1).

The representation is a dict-of-dicts adjacency map, the sweet spot for
pure-Python sparse graph algorithms: O(1) expected edge queries and O(deg)
neighbor iteration.

Self-loops are rejected: bisection treats a self-loop as uncuttable noise,
and the compaction code explicitly drops the loop created by contracting a
matched edge.
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable, Iterable, Iterator

__all__ = ["Graph", "graph_fingerprint", "vertex_token"]

Vertex = Hashable


def vertex_token(v: Vertex) -> str:
    """A stable string token for a vertex label.

    The type name is included so ``1`` and ``"1"`` stay distinct; tokens
    are what the execution engine stores in result payloads (cache files,
    cross-process job results) and maps back to vertices on load.
    """
    return f"{type(v).__name__}:{v}"


def graph_fingerprint(graph: "Graph") -> str:
    """Canonical content hash of a graph (labels, weights, and edges).

    The fingerprint is the SHA-256 of a canonical serialization: sorted
    ``v <token> <weight>`` vertex lines followed by sorted
    ``e <token> <token> <weight>`` edge lines (endpoints ordered within
    each edge).  Two graphs get the same fingerprint iff they have the
    same labelled vertex set, vertex weights, edge set, and edge weights —
    regardless of insertion order.  Used as the engine's cache key and
    shown by ``repro-bisect info``.

    >>> a = Graph.from_edges([(0, 1), (1, 2)])
    >>> b = Graph.from_edges([(1, 2), (0, 1)])
    >>> graph_fingerprint(a) == graph_fingerprint(b)
    True
    """
    cached = graph._derived.get("fingerprint")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    vertex_lines = sorted(
        f"v {vertex_token(v)} {graph.vertex_weight(v)}" for v in graph.vertices()
    )
    edge_lines = sorted(
        "e {} {} {}".format(*sorted((vertex_token(u), vertex_token(v))), w)
        for u, v, w in graph.edges()
    )
    for line in vertex_lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    for line in edge_lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    fingerprint = digest.hexdigest()
    graph._derived["fingerprint"] = fingerprint
    return fingerprint


class Graph:
    """Undirected graph with integer edge and vertex weights.

    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.has_edge(1, 0)
    True
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_vertex_weight", "_num_edges", "_total_edge_weight", "_derived")

    def __init__(self) -> None:
        self._adj: dict[Vertex, dict[Vertex, int]] = {}
        self._vertex_weight: dict[Vertex, int] = {}
        self._num_edges = 0
        self._total_edge_weight = 0
        # Content-derived snapshots (canonical fingerprint, CSR view) keyed by
        # name; every mutation clears the dict, so an entry is always in sync
        # with the current vertex/edge set.
        self._derived: dict[str, object] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple],
        vertices: Iterable[Vertex] = (),
    ) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples.

        ``vertices`` adds isolated vertices not covered by any edge.
        Duplicate edges accumulate weight.
        """
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1
            else:
                u, v, w = edge
            g.add_edge(u, v, w, merge=True)
        return g

    def copy(self) -> "Graph":
        """Return an independent deep copy."""
        g = Graph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._vertex_weight = dict(self._vertex_weight)
        g._num_edges = self._num_edges
        g._total_edge_weight = self._total_edge_weight
        # Derived snapshots are immutable and content-addressed, so the copy
        # can share them until its first mutation clears its own dict.
        g._derived = dict(self._derived)
        return g

    # -- mutation -----------------------------------------------------------------

    def add_vertex(self, v: Vertex, weight: int = 1) -> None:
        """Add vertex ``v`` (idempotent; re-adding updates the weight)."""
        if weight <= 0:
            raise ValueError(f"vertex weight must be positive, got {weight}")
        if v not in self._adj:
            self._adj[v] = {}
        self._vertex_weight[v] = weight
        if self._derived:
            self._derived.clear()

    def add_edge(self, u: Vertex, v: Vertex, weight: int = 1, *, merge: bool = False) -> None:
        """Add the undirected edge ``{u, v}``; endpoints are created as needed.

        With ``merge=True`` an existing edge gains ``weight``; otherwise
        adding a duplicate edge raises ``ValueError`` (simple-graph
        discipline, which the generators rely on).
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed: ({u!r}, {v!r})")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if u not in self._adj:
            self.add_vertex(u)
        if v not in self._adj:
            self.add_vertex(v)
        existing = self._adj[u].get(v)
        if existing is not None:
            if not merge:
                raise ValueError(f"edge ({u!r}, {v!r}) already exists")
            self._adj[u][v] = existing + weight
            self._adj[v][u] = existing + weight
            self._total_edge_weight += weight
        else:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._num_edges += 1
            self._total_edge_weight += weight
        if self._derived:
            self._derived.clear()

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        weight = self._adj[u].pop(v)
        del self._adj[v][u]
        self._num_edges -= 1
        self._total_edge_weight -= weight
        if self._derived:
            self._derived.clear()

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; raises ``KeyError`` if absent."""
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        del self._vertex_weight[v]
        if self._derived:
            self._derived.clear()

    # -- queries ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    @property
    def total_vertex_weight(self) -> int:
        return sum(self._vertex_weight.values())

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Vertex, Vertex, int]]:
        """Iterate over ``(u, v, weight)`` with each undirected edge once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield u, v, w
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edge_weight(self, u: Vertex, v: Vertex, default: int = 0) -> int:
        """Weight of edge ``{u, v}``, or ``default`` if absent."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return default
        return nbrs.get(v, default)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        return iter(self._adj[v])

    def neighbor_items(self, v: Vertex) -> Iterator[tuple[Vertex, int]]:
        """Iterate ``(neighbor, edge_weight)`` pairs of ``v``."""
        return iter(self._adj[v].items())

    def adjacency(self, v: Vertex) -> dict[Vertex, int]:
        """The internal ``neighbor -> weight`` map of ``v`` (do not mutate)."""
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """Number of incident edges (unweighted)."""
        return len(self._adj[v])

    def weighted_degree(self, v: Vertex) -> int:
        """Sum of incident edge weights."""
        return sum(self._adj[v].values())

    def vertex_weight(self, v: Vertex) -> int:
        return self._vertex_weight[v]

    def average_degree(self) -> float:
        """Average unweighted degree, ``2|E| / |V|`` (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def is_uniform_vertex_weight(self) -> bool:
        """True when every vertex has weight 1 (i.e. not a contracted graph)."""
        return all(w == 1 for w in self._vertex_weight.values())

    # -- derived graphs -----------------------------------------------------------

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Induced subgraph on ``keep`` (vertex weights preserved)."""
        keep_set = set(keep)
        g = Graph()
        for v in keep_set:
            if v not in self._adj:
                raise KeyError(f"vertex {v!r} not in graph")
            g.add_vertex(v, self._vertex_weight[v])
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                g.add_edge(u, v, w)
        return g

    def relabeled(self) -> tuple["Graph", dict[Vertex, int]]:
        """Return a copy with vertices renamed ``0 .. n-1`` plus the mapping."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        g = Graph()
        for v, i in mapping.items():
            g.add_vertex(i, self._vertex_weight[v])
        for u, v, w in self.edges():
            g.add_edge(mapping[u], mapping[v], w)
        return g, mapping

    # -- misc ---------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"avg_deg={self.average_degree():.2f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj and self._vertex_weight == other._vertex_weight

    def __hash__(self):  # Graphs are mutable.
        raise TypeError("Graph objects are unhashable")

    def validate(self) -> None:
        """Check internal invariants (symmetry, counters); raises on violation.

        Intended for tests and debugging, not hot paths.
        """
        edge_count = 0
        weight_sum = 0
        for u, nbrs in self._adj.items():
            if u not in self._vertex_weight:
                raise AssertionError(f"vertex {u!r} missing weight")
            for v, w in nbrs.items():
                if u == v:
                    raise AssertionError(f"self-loop at {u!r}")
                if self._adj.get(v, {}).get(u) != w:
                    raise AssertionError(f"asymmetric edge ({u!r}, {v!r})")
                edge_count += 1
                weight_sum += w
        if edge_count != 2 * self._num_edges:
            raise AssertionError(f"edge counter {self._num_edges} != actual {edge_count // 2}")
        if weight_sum != 2 * self._total_edge_weight:
            raise AssertionError(
                f"edge weight counter {self._total_edge_weight} != actual {weight_sum // 2}"
            )
