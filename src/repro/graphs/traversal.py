"""Graph traversal primitives: BFS, DFS, connected components, cycles.

These are substrates for the generators (connectivity checks), the exact
baselines (cycle decomposition of degree-2 graphs), and the model-study
example.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterator

from .graph import Graph

__all__ = [
    "bfs_order",
    "bfs_layers",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "shortest_path",
    "all_simple_paths",
    "cycle_decomposition",
]

Vertex = Hashable


def bfs_order(graph: Graph, source: Vertex) -> list[Vertex]:
    """Vertices reachable from ``source`` in breadth-first order."""
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def bfs_layers(graph: Graph, source: Vertex) -> Iterator[list[Vertex]]:
    """Yield BFS layers (lists of vertices at equal distance from ``source``)."""
    seen = {source}
    layer = [source]
    while layer:
        yield layer
        nxt: list[Vertex] = []
        for u in layer:
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        layer = nxt


def dfs_order(graph: Graph, source: Vertex) -> list[Vertex]:
    """Vertices reachable from ``source`` in (iterative) depth-first preorder."""
    seen = {source}
    order: list[Vertex] = []
    stack = [source]
    while stack:
        u = stack.pop()
        order.append(u)
        # Reversed so the first-listed neighbor is visited first, matching
        # the recursive formulation.
        for v in reversed(list(graph.neighbors(u))):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return order


def connected_components(graph: Graph) -> list[list[Vertex]]:
    """All connected components, each as a list of vertices."""
    seen: set[Vertex] = set()
    components: list[list[Vertex]] = []
    for v in graph.vertices():
        if v in seen:
            continue
        component = bfs_order(graph, v)
        seen.update(component)
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has exactly one connected component (or is empty)."""
    n = graph.num_vertices
    if n == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(bfs_order(graph, first)) == n


def shortest_path_lengths(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    """Unweighted shortest-path distance from ``source`` to each reachable vertex."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> list[Vertex] | None:
    """One unweighted shortest path from ``source`` to ``target``.

    Returns the vertex sequence (``[source]`` when they coincide) or
    ``None`` when ``target`` is unreachable.  Deterministic: BFS explores
    neighbors in insertion order, so ties break the same way every run.
    """
    if source not in graph or target not in graph:
        raise KeyError(f"both endpoints must be in the graph: {source!r}, {target!r}")
    if source == target:
        return [source]
    parent: dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(v)
    return None


def all_simple_paths(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    limit: int | None = None,
) -> list[list[Vertex]]:
    """Every simple path from ``source`` to ``target`` (DFS backtracking).

    Paths are emitted in the deterministic order induced by neighbor
    insertion order.  ``limit`` caps the number of paths returned (the
    count is exponential in dense graphs); ``None`` means no cap.
    """
    if source not in graph or target not in graph:
        raise KeyError(f"both endpoints must be in the graph: {source!r}, {target!r}")
    paths: list[list[Vertex]] = []
    on_path = {source}
    path = [source]

    def extend(u: Vertex) -> bool:
        """DFS from ``u``; returns False once the limit is reached."""
        if u == target:
            paths.append(list(path))
            return limit is None or len(paths) < limit
        for v in graph.neighbors(u):
            if v in on_path:
                continue
            on_path.add(v)
            path.append(v)
            more = extend(v)
            path.pop()
            on_path.remove(v)
            if not more:
                return False
        return True

    extend(source)
    return paths


def cycle_decomposition(graph: Graph) -> list[list[Vertex]]:
    """Decompose a graph whose every vertex has degree 2 into its simple cycles.

    ``Gbreg(2n, b, 2)`` graphs are exactly disjoint unions of chordless
    cycles (paper Section VI), for which bisection is solvable exactly;
    this is the substrate for :func:`repro.partition.dfs_cycle.bisect_cycles`.

    Raises ``ValueError`` if any vertex does not have degree 2.
    """
    for v in graph.vertices():
        if graph.degree(v) != 2:
            raise ValueError(f"vertex {v!r} has degree {graph.degree(v)}, expected 2")
    cycles: list[list[Vertex]] = []
    seen: set[Vertex] = set()
    for start in graph.vertices():
        if start in seen:
            continue
        cycle = [start]
        seen.add(start)
        prev = start
        current = next(iter(graph.neighbors(start)))
        while current != start:
            cycle.append(current)
            seen.add(current)
            a, b = graph.neighbors(current)
            prev, current = current, (b if a == prev else a)
        cycles.append(cycle)
    return cycles
