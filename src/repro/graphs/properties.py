"""Graph property helpers: degree statistics, regularity, model diagnostics.

The paper's graph-model discussion (Section IV) revolves around average
degree and expected bisection width; these helpers compute the quantities
the benches and the model-study example report.
"""

from __future__ import annotations

import math
from collections import Counter

from .graph import Graph

__all__ = [
    "degree_histogram",
    "min_degree",
    "max_degree",
    "is_regular",
    "is_simple",
    "expected_gnp_degree",
    "gnp_probability_for_degree",
    "planted_probability_for_degree",
    "random_bisection_expected_cut",
]


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map ``degree -> count of vertices with that degree``."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def min_degree(graph: Graph) -> int:
    return min((graph.degree(v) for v in graph.vertices()), default=0)


def max_degree(graph: Graph) -> int:
    return max((graph.degree(v) for v in graph.vertices()), default=0)


def is_regular(graph: Graph, d: int | None = None) -> bool:
    """True iff every vertex has the same degree (equal to ``d`` when given)."""
    degrees = {graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    return d is None or degrees == {d}


def is_simple(graph: Graph) -> bool:
    """True iff the graph has no parallel edges or self-loops.

    :class:`~repro.graphs.graph.Graph` structurally forbids both, so this
    reduces to checking that no *merged* parallel edge left a weight > 1
    on a unit-vertex-weight graph.  On contracted graphs weights > 1 are
    legitimate, so this check only applies to uncontracted graphs.
    """
    if not graph.is_uniform_vertex_weight():
        raise ValueError("is_simple is only meaningful for uncontracted graphs")
    return all(w == 1 for _, _, w in graph.edges())


def expected_gnp_degree(num_vertices: int, p: float) -> float:
    """Expected vertex degree of ``Gnp(num_vertices, p)``: ``(n - 1) p``."""
    return (num_vertices - 1) * p


def gnp_probability_for_degree(num_vertices: int, avg_degree: float) -> float:
    """Edge probability ``p`` that gives ``Gnp`` the requested average degree."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    p = avg_degree / (num_vertices - 1)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"avg_degree {avg_degree} is infeasible for n={num_vertices}")
    return p


def planted_probability_for_degree(
    num_vertices: int, avg_degree: float, cross_edges: int
) -> float:
    """Intra-side edge probability for ``G2set(2n, pA, pB, bis)``.

    Solves for the ``pA = pB`` that makes the *overall* average degree equal
    ``avg_degree`` given exactly ``cross_edges`` planted cross edges:
    total edges ``m = 2 * pA * C(n, 2) + cross_edges`` and
    ``avg_degree = 2m / 2n``.
    """
    if num_vertices % 2:
        raise ValueError("num_vertices must be even")
    n = num_vertices // 2
    if n < 2:
        raise ValueError("need at least 4 vertices")
    target_edges = avg_degree * num_vertices / 2.0
    intra_edges = target_edges - cross_edges
    pairs_per_side = n * (n - 1) / 2.0
    p = intra_edges / (2.0 * pairs_per_side)
    if not 0.0 <= p <= 1.0:
        raise ValueError(
            f"avg_degree {avg_degree} with {cross_edges} cross edges is infeasible "
            f"for 2n={num_vertices}"
        )
    return p


def random_bisection_expected_cut(graph: Graph) -> float:
    """Expected cut of a uniformly random bisection.

    Each edge is cut with probability ``n / (2n - 1)`` (just over one half),
    so the expected random cut is ``|E| * n / (2n - 1)``.  Section IV's
    criticism of the ``Gnp`` model is that its *minimum* cut is close to
    this value, so random partitions are near-optimal and the model cannot
    separate good heuristics from mediocre ones.
    """
    two_n = graph.num_vertices
    if two_n < 2:
        return 0.0
    n = two_n // 2
    return graph.total_edge_weight * n / (two_n - 1)


def triangle_count(graph: Graph) -> int:
    """Number of triangles (3-cycles) in the graph.

    Rank-ordered neighbor intersection: each triangle is counted exactly
    once at its lowest-ranked vertex.  ``O(sum deg(v)^2)`` worst case,
    fast on the sparse graphs this package deals in.
    """
    rank = {v: i for i, v in enumerate(graph.vertices())}
    count = 0
    for u in graph.vertices():
        higher = [w for w in graph.neighbors(u) if rank[w] > rank[u]]
        higher_set = set(higher)
        for i, w in enumerate(higher):
            for x in higher[i + 1 :]:
                if graph.has_edge(w, x):
                    count += 1
        del higher_set
    return count


def clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient: ``3 * triangles / open-or-closed wedges``.

    Random sparse models (``Gnp``, ``Gbreg`` at fixed degree) have
    vanishing clustering while real netlist clique expansions have a lot;
    the model-study example reports this as a structure diagnostic.
    Returns 0.0 for graphs with no wedge.
    """
    wedges = 0
    for v in graph.vertices():
        d = graph.degree(v)
        wedges += d * (d - 1) // 2
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Summary dict: min/max/mean/std of degrees (population std)."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    if not degrees:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
    mean = sum(degrees) / len(degrees)
    var = sum((d - mean) ** 2 for d in degrees) / len(degrees)
    return {
        "min": float(min(degrees)),
        "max": float(max(degrees)),
        "mean": mean,
        "std": math.sqrt(var),
    }


__all__.extend(["degree_statistics", "triangle_count", "clustering_coefficient"])
