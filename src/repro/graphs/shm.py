"""Zero-copy shared-memory export of compiled CSR graphs.

A multi-worker batch over one large graph used to ship that graph to
every worker as a pickle (or rely on fork copy-on-write) and then let
*each worker* recompile its own CSR view.  This module packs the
already-compiled :class:`~repro.graphs.csr.CSRGraph` buffers into a
single :class:`multiprocessing.shared_memory.SharedMemory` segment so
the compile happens exactly once, in the parent, and workers map the
arrays read-only at zero copy cost.

Segment layout (all little-endian)::

    [ 8 bytes ] magic  b"RPROCSR1"
    [ 8 bytes ] length of the pickled metadata block
    [ ......  ] pickled metadata dict (labels, counters, flags)
    [ pad to 8-byte boundary ]
    [ int64[]  ] indptr        (n + 1 entries)
    [ int64[]  ] indices       (one per directed edge slot)
    [ int64[]  ] edge_weight   (parallel to indices)
    [ int64[]  ] heads         (parallel to indices)
    [ int64[]  ] vertex_weight (n entries)

Attaching rebuilds the :class:`~repro.graphs.graph.Graph` (the adjacency
dicts are reconstructed from the CSR rows — cheaper than unpickling them
and identical in insertion order, so every downstream decision matches
the parent bit for bit) and wires a :class:`CSRGraph` whose array slots
are ``memoryview.cast("q")`` windows straight into the segment.  The
rebuilt CSR is pre-seeded into ``graph._derived["csr"]`` so
:func:`~repro.graphs.csr.csr_view` in the worker finds it instead of
compiling — the ``csr_compiles_total`` counter never moves off-parent.

Lifecycle contract: the *creator* owns the segment and must call
:meth:`SharedGraphSegment.unlink` (``close()`` alone only drops this
process's mapping).  Attachers call :meth:`close` when done; a worker
that simply exits is also fine, the OS drops its mapping.  Attaching a
stale or foreign name raises :class:`ShmAttachError`, which callers use
to fall back to the plain pickle path.
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory

from .csr import CSRGraph
from .graph import Graph

__all__ = [
    "SharedGraphSegment",
    "ShmAttachError",
    "ShmGraphRef",
    "shm_enabled",
]

_MAGIC = b"RPROCSR1"
_HEADER = struct.Struct("<8sQ")  # magic, metadata byte length


def shm_enabled() -> bool:
    """True unless the ``REPRO_SHM`` escape hatch disables shm sharding.

    Any non-empty value other than ``0`` keeps sharding on; ``0`` forces
    the engine back to the pickled-graph worker path.  Checked at batch
    time, not import time, so tests can flip it per run.
    """
    return os.environ.get("REPRO_SHM", "1") != "0"


class ShmAttachError(RuntimeError):
    """Attaching a named graph segment failed (missing, foreign, corrupt)."""


@dataclass(frozen=True)
class ShmGraphRef:
    """A by-name handle to a shared graph segment.

    This is what actually crosses the process boundary: a few bytes that
    pickle trivially under any start method, in place of the graph.
    """

    name: str


class SharedGraphSegment:
    """One graph's CSR buffers in a shared-memory segment.

    Create with :meth:`create` (parent side, owns the segment) or
    :meth:`attach` (worker side, by name).  :meth:`graph` returns the
    graph either way — the original object on the creator, a zero-copy
    reconstruction on attachers.
    """

    __slots__ = ("name", "size", "shm", "owner", "_graph", "_views")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.name = shm.name
        self.size = shm.size
        self.owner = owner
        self._graph: Graph | None = None
        self._views: list[memoryview] = []

    # -- creation -----------------------------------------------------------------

    @classmethod
    def create(cls, graph: Graph) -> "SharedGraphSegment":
        """Compile (or reuse) the graph's CSR view and export it.

        Raises whatever the pickle or shm layer raises — callers treat
        any failure as "this graph is not shareable" and fall back.
        """
        from .csr import csr_view  # compile-on-demand, counted once here

        csr = csr_view(graph)
        meta = pickle.dumps(
            {
                "labels": csr.labels,
                "num_edges": csr.num_edges,
                "total_edge_weight": csr.total_edge_weight,
                "total_vertex_weight": csr.total_vertex_weight,
                "max_weighted_degree": csr.max_weighted_degree,
                "unit_edge_weights": csr.unit_edge_weights,
                "unit_vertex_weights": csr.unit_vertex_weights,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        offset = _HEADER.size + len(meta)
        offset += (-offset) % 8  # arrays start 8-byte aligned
        arrays = (csr.indptr, csr.indices, csr.edge_weight, csr.heads,
                  csr.vertex_weight)
        total = offset + sum(8 * len(a) for a in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            buf = shm.buf
            _HEADER.pack_into(buf, 0, _MAGIC, len(meta))
            buf[_HEADER.size : _HEADER.size + len(meta)] = meta
            at = offset
            for a in arrays:
                raw = a.tobytes()
                buf[at : at + len(raw)] = raw
                at += len(raw)
        except Exception:
            shm.close()
            shm.unlink()
            raise
        segment = cls(shm, owner=True)
        segment._graph = graph
        return segment

    # -- attachment ---------------------------------------------------------------

    @classmethod
    def attach(cls, name: str) -> "SharedGraphSegment":
        """Map an existing segment by name; :class:`ShmAttachError` on failure."""
        # The creator owns cleanup: keep this process's resource tracker
        # out of it entirely (pre-3.13 SharedMemory has no track=False),
        # or a spawn worker's tracker would unlink the segment at worker
        # exit while the parent still serves it to siblings.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise ShmAttachError(f"segment {name!r}: {exc}") from exc
        finally:
            resource_tracker.register = original_register
        segment = cls(shm, owner=False)
        try:
            segment._validate()
        except ShmAttachError:
            segment.close()
            raise
        return segment

    def _validate(self) -> None:
        buf = self.shm.buf
        if len(buf) < _HEADER.size:
            raise ShmAttachError(f"segment {self.name!r}: truncated header")
        magic, meta_len = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ShmAttachError(f"segment {self.name!r}: not a graph segment")
        if _HEADER.size + meta_len > len(buf):
            raise ShmAttachError(f"segment {self.name!r}: truncated metadata")

    def graph(self) -> Graph:
        """The shared graph (reconstructed lazily and cached on attachers)."""
        if self._graph is None:
            try:
                self._graph = self._rebuild()
            except ShmAttachError:
                raise
            except Exception as exc:  # corrupt payload: surface as attach failure
                raise ShmAttachError(f"segment {self.name!r}: {exc}") from exc
        return self._graph

    def _rebuild(self) -> Graph:
        buf = self.shm.buf
        _magic, meta_len = _HEADER.unpack_from(buf, 0)
        meta = pickle.loads(bytes(buf[_HEADER.size : _HEADER.size + meta_len]))
        offset = _HEADER.size + meta_len
        offset += (-offset) % 8

        labels = meta["labels"]
        n = len(labels)

        def window(count: int) -> memoryview:
            nonlocal offset
            view = buf[offset : offset + 8 * count].cast("q")
            self._views.append(view)
            offset += 8 * count
            return view

        indptr = window(n + 1)
        m2 = indptr[n] if n else 0
        indices = window(m2)
        edge_weight = window(m2)
        heads = window(m2)
        vertex_weight = window(n)

        csr = CSRGraph.__new__(CSRGraph)
        csr.labels = labels
        csr.index_of = {v: i for i, v in enumerate(labels)}
        try:
            by_rank = sorted(range(n), key=labels.__getitem__)
        except TypeError:
            csr.rank = csr.by_rank = None
        else:
            rank = [0] * n
            for position, i in enumerate(by_rank):
                rank[i] = position
            csr.rank = rank
            csr.by_rank = by_rank
        csr.indptr = indptr
        csr.indices = indices
        csr.edge_weight = edge_weight
        csr.vertex_weight = vertex_weight
        csr.heads = heads
        csr.num_vertices = n
        csr.num_edges = meta["num_edges"]
        csr.total_edge_weight = meta["total_edge_weight"]
        csr.total_vertex_weight = meta["total_vertex_weight"]
        csr.max_weighted_degree = meta["max_weighted_degree"]
        csr.unit_edge_weights = meta["unit_edge_weights"]
        csr.unit_vertex_weights = meta["unit_vertex_weights"]
        csr._lists = {}

        # Rebuild the dict-of-dicts Graph around the view.  Rows follow CSR
        # order, which is the parent graph's insertion order, so iteration
        # order — and therefore every RNG-coupled decision — is preserved.
        graph = Graph()
        adj = graph._adj
        vw = graph._vertex_weight
        for i, v in enumerate(labels):
            adj[v] = {}
            vw[v] = vertex_weight[i]
        for i, v in enumerate(labels):
            row = adj[v]
            for slot in range(indptr[i], indptr[i + 1]):
                row[labels[indices[slot]]] = edge_weight[slot]
        graph._num_edges = meta["num_edges"]
        graph._total_edge_weight = meta["total_edge_weight"]
        graph._derived["csr"] = csr
        return graph

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (creator keeps the segment alive).

        Releases every exported view first; if user code still holds one
        (a cached numpy view, a kernel mid-flight) the unmap is deferred
        to process exit rather than raising.
        """
        graph = self._graph
        if graph is not None and not self.owner:
            csr = graph._derived.get("csr")
            if isinstance(csr, CSRGraph):
                csr._lists.clear()  # may cache numpy frombuffer views
        self._graph = None
        for view in self._views:
            view.release()
        self._views = []
        try:
            self.shm.close()
        except BufferError:
            pass  # an outstanding view pins the mapping until process exit

    def unlink(self) -> None:
        """Remove the segment from the system (creator side; idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedGraphSegment":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        if self.owner:
            self.unlink()
        return False

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return f"SharedGraphSegment({self.name!r}, {self.size} bytes, {role})"
