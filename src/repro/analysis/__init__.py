"""Zero-dependency static analysis: determinism & invariant linting.

The repo's headline guarantees — seed-determinism, decision-identical
CSR/dict kernels, zero hot-loop observability cost — are enforced
dynamically by the test suites.  This package enforces them *statically*:
a pure-:mod:`ast` pass over ``src/repro`` with a project model
(:mod:`~repro.analysis.project`), a rule engine with per-rule scopes and
allow-zones (:mod:`~repro.analysis.config`,
:mod:`~repro.analysis.rules`), and a ruleset R001-R016 encoding the
contracts the violating code would otherwise only break at run time:
syntactic determinism/invariant rules in :mod:`~repro.analysis.ruleset`,
flow-sensitive concurrency and resource-lifetime rules in
:mod:`~repro.analysis.flowrules` on top of the per-function CFG builder
(:mod:`~repro.analysis.cfg`) and the forward dataflow engine
(:mod:`~repro.analysis.dataflow`).

Findings render as text, JSON, or SARIF 2.1.0 (:mod:`~repro.analysis.sarif`);
accepted legacy findings live in the checked-in ``baseline.json`` with
mandatory justifications (:mod:`~repro.analysis.baseline`).  Repeat runs
hit the content-addressed incremental cache
(:mod:`~repro.analysis.lintcache`), and the mechanical subset of the
ruleset is auto-fixable (:mod:`~repro.analysis.fixes`).  The
``repro-bisect lint`` command and the CI ``lint`` job are the consumers.
"""

from .baseline import Baseline, BaselineEntry, apply_baseline, update_baseline
from .config import AnalysisConfig, default_config
from .fixes import FIXABLE_RULES, FixPlan, plan_fixes
from .lintcache import CacheStats, LintCache, run_cached_analysis
from .project import ModuleInfo, ProjectModel
from .report import render_json, render_text
from .rules import Finding, Rule, Severity
from .ruleset import ALL_RULES, RULE_ALIASES, default_rules
from .runner import (
    AnalysisResult,
    analyze,
    default_baseline_path,
    run_analysis,
    valid_rule_ids,
)
from .sarif import SARIF_SCHEMA_URI, SARIF_VERSION, to_sarif

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "CacheStats",
    "FIXABLE_RULES",
    "Finding",
    "FixPlan",
    "LintCache",
    "ModuleInfo",
    "ProjectModel",
    "RULE_ALIASES",
    "Rule",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "Severity",
    "analyze",
    "apply_baseline",
    "default_baseline_path",
    "default_config",
    "default_rules",
    "plan_fixes",
    "render_json",
    "render_text",
    "run_analysis",
    "run_cached_analysis",
    "to_sarif",
    "update_baseline",
    "valid_rule_ids",
]
