"""Flow-sensitive rules R011-R016, built on the CFG/dataflow layer.

These rules answer path questions the syntactic ruleset (R001-R010)
cannot: *is this attribute write always under the lock that guards its
siblings?  Does this shm segment reach a close() on the exceptional path
too?*  Each rule composes :mod:`repro.analysis.cfg` and
:mod:`repro.analysis.dataflow` with the project model:

* **R011** lock discipline — an attribute written under ``self._lock``
  in one method must not be written lock-free in another.
* **R012** fork/spawn-unsafe module state — module-level mutable
  containers mutated at run time in modules reachable from worker entry
  points diverge between ``fork`` (inherits parent state) and ``spawn``
  (re-imports fresh) workers.
* **R013** resource lifetime — every shm/file/socket acquisition must
  reach a release on all CFG paths, including exceptional edges.  The
  shm kind subsumes the old syntactic R009 and keeps that rule id on its
  findings so baselines and SARIF filters continue to match.
* **R014** seed taint — values derived from the seed protocol must not
  merge with wall-clock/``id()``/hash-tainted values on their way to an
  algorithm entry point.
* **R015** blocking calls in worker hot paths — ``time.sleep``,
  unbounded ``.join()``, and timeout-less socket connects inside
  functions that run on pool workers.
* **R016** unjoined thread/process handles — a started non-daemon
  handle must reach ``join()`` (or escape to an owner who will).
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from .cfg import CFG, STMT, build_cfg, expr_token, function_cfgs
from .dataflow import (
    LockSetAnalysis,
    ResourceAnalysis,
    ResourceSpec,
    TaintAnalysis,
    is_lock_factory,
    run_forward,
)
from .escape import concurrency_sites, global_mutations, mutable_globals
from .project import ModuleInfo, ProjectModel, qualified_call_name
from .rules import Finding, Rule, Severity, scoped_nodes

__all__ = ["FLOW_RULES", "RULE_ALIASES"]

#: Retired rule ids that now resolve to a flow rule.  R009's syntactic
#: shm matcher was subsumed by R013; findings of the shm kind still
#: carry the R009 id so baselines and SARIF filters keep working.
RULE_ALIASES: dict[str, str] = {"R009": "R013"}


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _resolver(module: ModuleInfo) -> Callable[[ast.expr], str | None]:
    return lambda expr: qualified_call_name(expr, module.aliases)


# -- R011: lock discipline ---------------------------------------------------------

_MUTATOR_METHODS = frozenset(
    {"add", "append", "appendleft", "clear", "discard", "extend",
     "extendleft", "insert", "pop", "popleft", "popitem", "remove",
     "setdefault", "update"}
)
#: Methods that run while the object is not yet (or no longer) shared.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__del__", "__getstate__", "__setstate__",
     "__reduce__", "__copy__", "__deepcopy__", "__init_subclass__"}
)


def _self_attr_writes(stmt: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """``(attr, site)`` for each write to ``self.<attr>`` in one statement."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested bodies do not execute here
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    for target in targets:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            yield base.attr, stmt
    for call in _calls(stmt):
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATOR_METHODS
        ):
            recv = call.func.value
            while isinstance(recv, ast.Subscript):
                recv = recv.value
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                yield recv.attr, call


class _SeededLockSet(LockSetAnalysis):
    """Lock-set analysis whose entry state can pre-hold caller locks."""

    def __init__(self, known: frozenset[str], entry: frozenset[str]) -> None:
        super().__init__(known)
        self._entry = entry

    def initial(self) -> frozenset[str]:
        return self._entry


class R011LockDiscipline(Rule):
    id = "R011"
    name = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "An attribute written under a lock in one method must be written "
        "under the same lock everywhere (construction-time methods exempt); "
        "a lock-free sibling write is a data race."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        resolve = _resolver(module)
        for node, context, _ in scoped_nodes(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, context, resolve)

    def _check_class(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        outer: str,
        resolve: Callable[[ast.expr], str | None],
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        lock_tokens = self._lock_tokens(methods.values(), resolve)
        if not lock_tokens:
            return
        cfgs = {name: build_cfg(fn) for name, fn in methods.items()}
        states = self._converged_states(methods, cfgs, lock_tokens)

        # Collect every self-attribute write with the locks held there.
        writes: list[tuple[str, str, ast.AST, frozenset[str]]] = []
        for name, cfg in cfgs.items():
            for block in cfg.statements():
                in_state = states[name].get(block.id)
                if in_state is None:
                    continue  # unreachable
                for attr, site in _self_attr_writes(block.node):
                    if f"self.{attr}" in lock_tokens:
                        continue  # assigning the lock itself
                    writes.append((attr, name, site, in_state))

        guards: dict[str, frozenset[str]] = {}
        for attr, method, _site, held in writes:
            if method in _CONSTRUCTION_METHODS:
                continue
            locks = held & lock_tokens
            if locks:
                guards[attr] = guards.get(attr, frozenset()) | locks
        for attr, method, site, held in writes:
            if method in _CONSTRUCTION_METHODS:
                continue
            guard = guards.get(attr)
            if guard and not (held & guard):
                locks = "/".join(sorted(guard))
                context = f"{self._ctx(cls, method)}"
                yield self.finding(
                    module, site,
                    f"`self.{attr}` is written under `{locks}` elsewhere in "
                    f"`{cls.name}` but written here without it",
                    context,
                )

    @staticmethod
    def _ctx(cls: ast.ClassDef, method: str) -> str:
        return f"{cls.name}.{method}"

    @staticmethod
    def _lock_tokens(
        methods, resolve: Callable[[ast.expr], str | None]
    ) -> frozenset[str]:
        tokens: set[str] = set()
        for fn in methods:
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                if not is_lock_factory(resolve(node.value.func)):
                    continue
                for target in node.targets:
                    token = expr_token(target)
                    if token is not None and token.startswith("self."):
                        tokens.add(token)
        return frozenset(tokens)

    def _converged_states(
        self,
        methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        cfgs: dict[str, CFG],
        lock_tokens: frozenset[str],
    ) -> dict[str, dict[int, frozenset[str] | None]]:
        """Per-method in-states, seeding private helpers with caller locks.

        A ``_locked``-style helper is only ever called with the lock held;
        starting it from the empty set would flag every write inside it.
        Private methods (leading underscore) inherit the intersection of
        the lock sets at their intra-class call sites, iterated to a
        small fixed point (callers may themselves be seeded helpers).
        """
        seeds: dict[str, frozenset[str]] = {name: frozenset() for name in methods}
        states: dict[str, dict[int, frozenset[str] | None]] = {}
        for _ in range(4):
            for name, cfg in cfgs.items():
                analysis = _SeededLockSet(lock_tokens, seeds[name])
                states[name] = run_forward(cfg, analysis)
            call_locks: dict[str, list[frozenset[str]]] = {}
            for name, cfg in cfgs.items():
                for block in cfg.statements():
                    in_state = states[name].get(block.id)
                    if in_state is None:
                        continue
                    for call in _calls(block.node):
                        if (
                            isinstance(call.func, ast.Attribute)
                            and isinstance(call.func.value, ast.Name)
                            and call.func.value.id == "self"
                            and call.func.attr in methods
                        ):
                            call_locks.setdefault(call.func.attr, []).append(
                                in_state & lock_tokens
                            )
            new_seeds = dict(seeds)
            for name in methods:
                if not name.startswith("_") or name.startswith("__"):
                    continue  # public API: callable with no locks held
                sites = call_locks.get(name)
                if sites:
                    inherited = sites[0]
                    for held in sites[1:]:
                        inherited = inherited & held
                    new_seeds[name] = inherited
            if new_seeds == seeds:
                break
            seeds = new_seeds
        return states


# -- R012: fork/spawn-unsafe module state ------------------------------------------


class R012ForkSpawnSafeModuleState(Rule):
    id = "R012"
    name = "fork-spawn-safe-module-state"
    severity = Severity.ERROR
    description = (
        "Run-time mutation of module-level mutable state in a module "
        "reachable from worker entry points diverges between fork workers "
        "(inherit parent state) and spawn workers (re-import fresh)."
    )

    def __init__(self) -> None:
        self._cache: tuple[int, set[str], set[str], set[str], set[str]] | None = None

    def _project_facts(
        self, project: ProjectModel
    ) -> tuple[set[str], set[str], set[str], set[str]]:
        """(worker-reachable modules, pool initializers, and the names
        called at module level vs. inside functions, project-wide)."""
        if self._cache is not None and self._cache[0] == id(project):
            return self._cache[1], self._cache[2], self._cache[3], self._cache[4]
        spawning: set[str] = set()
        initializers: set[str] = set()
        entry_names: set[str] = set()
        for module in project:
            sites = concurrency_sites(module)
            if sites.spawn_calls:
                spawning.add(module.name)
            entry_names |= sites.entry_names
            initializers |= sites.initializer_names
        # Modules defining an entry-point function are worker roots even
        # when the spawn call lives elsewhere.
        roots = set(spawning)
        for module in project:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in entry_names
                ):
                    roots.add(module.name)
                    break
        # Everything a worker root imports (transitively) is re-imported
        # inside the worker; its module state is subject to the rule.
        graph = project.import_graph()
        reachable = set(roots)
        frontier = list(roots)
        while frontier:
            for dep in graph.get(frontier.pop(), ()):
                if dep not in reachable:
                    reachable.add(dep)
                    frontier.append(dep)
        # Call-context index for the import-time-only exemption: one walk
        # over the project here instead of one per candidate function.
        toplevel_called: set[str] = set()
        runtime_called: set[str] = set()
        for module in project:
            for node, context, _ in scoped_nodes(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                ref = node.func
                name = ref.id if isinstance(ref, ast.Name) else (
                    ref.attr if isinstance(ref, ast.Attribute) else None
                )
                if name is not None:
                    (toplevel_called if context == "" else runtime_called).add(name)
        self._cache = (
            id(project), reachable, initializers, toplevel_called, runtime_called
        )
        return reachable, initializers, toplevel_called, runtime_called

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        reachable, initializers, toplevel_called, runtime_called = (
            self._project_facts(project)
        )
        if module.name not in reachable:
            return
        globals_ = mutable_globals(module)
        if not globals_:
            return
        # Globals a pool initializer rebinds are per-process state by
        # construction; mutating them anywhere in the module is the
        # sanctioned pattern, not a fork/spawn divergence.
        names = set(globals_) - self._initializer_reset(module, initializers)
        if not names:
            return
        for node, context, _ in scoped_nodes(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in initializers:
                continue  # per-worker reset: the sanctioned pattern
            # Import-time registration (`register_algorithm(...)` at the
            # foot of each algorithm module) mutates registries
            # identically in fork and spawn workers, so a function called
            # only at module level project-wide is exempt.
            if node.name in toplevel_called and node.name not in runtime_called:
                continue
            fn_context = f"{context}.{node.name}" if context else node.name
            seen: set[str] = set()
            for name, site in global_mutations(node, names):
                if name in seen:
                    continue
                seen.add(name)
                yield self.finding(
                    module, site,
                    f"module-level mutable `{name}` is mutated at run time "
                    "in a worker-reachable module; fork and spawn workers "
                    "will diverge — reset it in a pool initializer or pass "
                    "state through job payloads",
                    fn_context,
                )

    @staticmethod
    def _initializer_reset(module: ModuleInfo, initializers: set[str]) -> set[str]:
        """Names declared ``global`` inside a pool-initializer function."""
        reset: set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in initializers
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Global):
                        reset.update(sub.names)
        return reset


# -- R013: resource lifetime (subsumes R009) ---------------------------------------

_FILE_OPEN_ORIGINS = frozenset(
    {"open", "io.open", "os.fdopen", "gzip.open", "bz2.open", "lzma.open"}
)


def _shm_matches(call: ast.Call, resolve) -> bool:
    origin = resolve(call.func)
    if origin is None:
        return False
    return (
        origin.endswith("SharedGraphSegment.create")
        or origin.endswith("SharedGraphSegment.attach")
        or origin.endswith("SharedMemory")
    )


def _file_matches(call: ast.Call, resolve) -> bool:
    origin = resolve(call.func)
    if origin is None and isinstance(call.func, ast.Name):
        origin = call.func.id  # builtin `open` is never imported
    return origin in _FILE_OPEN_ORIGINS


def _socket_matches(call: ast.Call, resolve) -> bool:
    origin = resolve(call.func)
    if origin is None:
        return False
    return origin.endswith("socket.socket") or origin.endswith(
        "socket.create_connection"
    )


RESOURCE_SPECS: tuple[ResourceSpec, ...] = (
    ResourceSpec("shm", _shm_matches, frozenset({"close", "unlink"})),
    ResourceSpec("file", _file_matches, frozenset({"close"})),
    ResourceSpec("socket", _socket_matches, frozenset({"close", "detach"})),
)


class R013ResourceLifetime(Rule):
    id = "R013"
    name = "resource-lifetime"
    severity = Severity.ERROR
    description = (
        "Every shm/file/socket acquisition must reach a release on every "
        "CFG path — including the path where a statement between acquire "
        "and release raises.  Shm findings keep the legacy R009 id."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        resolve = _resolver(module)
        for context, _func, cfg in function_cfgs(module.tree):
            yield from self._check_cfg(module, context, cfg, resolve)
        # Module-level acquisitions (old R009 territory): the module body
        # is itself a straight-line "function".
        yield from self._check_cfg(module, "", build_cfg(module.tree), resolve)

    def _check_cfg(
        self, module: ModuleInfo, context: str, cfg: CFG, resolve
    ) -> Iterator[Finding]:
        analysis = ResourceAnalysis(cfg, list(RESOURCE_SPECS), resolve)
        if not analysis.acquisitions:
            return
        states = run_forward(cfg, analysis)
        at_exit = states.get(cfg.exit) or frozenset()
        at_raise = states.get(cfg.raise_exit) or frozenset()
        for site in sorted(at_exit | at_raise):
            acq = analysis.acquisitions[site]
            label = resolve(acq.node.func) or getattr(acq.node.func, "id", "call")
            rule_id = "R009" if acq.spec.kind == "shm" else self.id
            releases = "/".join(f"`{r}()`" for r in sorted(acq.spec.releases))
            if site in at_exit:
                message = (
                    f"`{acq.name}` acquired via `{label}(...)` can reach "
                    f"function exit unreleased; release it ({releases}) in "
                    "a finally block or hold it in a with statement"
                )
            else:
                message = (
                    f"`{acq.name}` acquired via `{label}(...)` leaks when a "
                    "statement between acquire and release raises; wrap the "
                    f"use in try/finally (or with) so the exceptional path "
                    f"reaches {releases} too"
                )
            yield Finding(
                rule=rule_id,
                severity=self.severity,
                path=module.relpath,
                line=getattr(acq.node, "lineno", 0),
                col=getattr(acq.node, "col_offset", 0),
                message=message,
                context=context,
            )


# -- R014: seed/RNG taint ----------------------------------------------------------

_SEED_ORIGIN_SUFFIXES = (".derive_seed", ".spawn_seed", ".seed_for")
_IMPURE_ORIGINS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "os.urandom", "os.getpid",
        "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes", "secrets.token_hex",
        "secrets.randbits",
    }
)
_IMPURE_BUILTINS = frozenset({"id", "hash"})
_SEED_PARAM_NAMES = frozenset({"seed", "rng", "base_seed", "master_seed"})


def _seed_source(origin: str | None, call: ast.Call) -> bool:
    if origin is None:
        return False
    return origin == "derive_seed" or origin.endswith(_SEED_ORIGIN_SUFFIXES)


def _impure_source(origin: str | None, call: ast.Call) -> bool:
    if origin in _IMPURE_ORIGINS:
        return True
    return (
        origin is None
        and isinstance(call.func, ast.Name)
        and call.func.id in _IMPURE_BUILTINS
    )


class R014SeedTaint(Rule):
    id = "R014"
    name = "seed-taint"
    severity = Severity.ERROR
    description = (
        "A value derived from the seed protocol (derive_seed/rng) must not "
        "merge with wall-clock-, id()-, or hash-tainted values before "
        "reaching an algorithm entry point; the run stops being replayable."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        resolve = _resolver(module)
        sources = {"seed": _seed_source, "impure": _impure_source}
        for context, func, cfg in function_cfgs(module.tree):
            params = {
                a.arg: frozenset({"seed"})
                for a in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs)
                if a.arg in _SEED_PARAM_NAMES or a.arg.endswith("_seed")
            }
            analysis = TaintAnalysis(sources, resolve, params)
            states = run_forward(cfg, analysis)
            for block in cfg.statements():
                state = states.get(block.id)
                if state is None:
                    continue
                yield from self._check_stmt(module, context, block.node, analysis, state)

    def _check_stmt(
        self, module, context, stmt, analysis: TaintAnalysis, state
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        # A seed-typed keyword fed an impure expression is the direct hit.
        for call in _calls(stmt):
            for kw in call.keywords:
                if kw.arg in _SEED_PARAM_NAMES:
                    labels = analysis.expr_taints(kw.value, state)
                    if "impure" in labels:
                        yield self.finding(
                            module, call,
                            f"impure (wall-clock/id/hash-derived) value flows "
                            f"into `{kw.arg}=`; seeds must come from the "
                            "derive_seed protocol only",
                            context,
                        )
        # The merge itself: an expression combining both taints, where no
        # single operand already carried both (that one was flagged at its
        # own merge site).
        value: ast.expr | None = None
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        elif isinstance(stmt, ast.Return):
            value = stmt.value
        if value is None:
            return
        labels = analysis.expr_taints(value, state)
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            labels = labels | frozenset(
                lb for (n, lb) in state if n == stmt.target.id
            )
        if {"seed", "impure"} <= labels:
            by_name: dict[str, set[str]] = {}
            for n, lb in state:
                by_name.setdefault(n, set()).add(lb)
            already_merged = any(
                {"seed", "impure"} <= by_name.get(sub.id, set())
                for sub in ast.walk(value)
                if isinstance(sub, ast.Name)
            )
            if not already_merged:
                yield self.finding(
                    module, stmt,
                    "seed-derived value merges with an impure "
                    "(wall-clock/id/hash-derived) value; the result is not "
                    "replayable from the run's seed",
                    context,
                )


# -- R015: blocking calls in worker hot paths --------------------------------------


class R015NoBlockingInWorkers(Rule):
    id = "R015"
    name = "no-blocking-in-workers"
    severity = Severity.WARNING
    description = (
        "time.sleep, unbounded .join(), and timeout-less socket connects "
        "inside worker entry points stall the whole pool lane; use "
        "timeouts and let the coordinator own back-off."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        workers = self._worker_functions(module)
        resolve = _resolver(module)
        for context, func in sorted(workers.items()):
            for call in _calls(func):
                origin = resolve(call.func)
                if origin == "time.sleep":
                    yield self.finding(
                        module, call,
                        "blocking `time.sleep(...)` in a worker hot path; "
                        "back-off belongs in the coordinator",
                        context,
                    )
                elif (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "join"
                    and not call.args
                    and not any(kw.arg == "timeout" for kw in call.keywords)
                ):
                    yield self.finding(
                        module, call,
                        "unbounded `.join()` in a worker hot path; pass a "
                        "timeout so a wedged peer cannot stall the lane",
                        context,
                    )
                elif origin is not None and origin.endswith(
                    "socket.create_connection"
                ) and not any(kw.arg == "timeout" for kw in call.keywords) and len(
                    call.args
                ) < 2:
                    yield self.finding(
                        module, call,
                        "socket connect without a timeout in a worker hot "
                        "path",
                        context,
                    )

    @staticmethod
    def _worker_functions(module: ModuleInfo) -> dict[str, ast.AST]:
        """Worker entry points plus their same-module callee closure."""
        sites = concurrency_sites(module)
        if not sites.entry_names:
            return {}
        defs: dict[str, list[tuple[ast.AST, str]]] = {}
        for node, context, _ in scoped_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, []).append((node, context))
        selected: dict[str, ast.AST] = {}
        visited: set[str] = set()
        frontier = sorted(sites.entry_names)
        while frontier:
            name = frontier.pop()
            if name in visited:
                continue
            visited.add(name)
            for func, context in defs.get(name, []):
                key = f"{context}.{func.name}" if context else func.name
                selected[key] = func
                for call in _calls(func):
                    ref = call.func
                    callee = None
                    if isinstance(ref, ast.Name):
                        callee = ref.id
                    elif (
                        isinstance(ref, ast.Attribute)
                        and isinstance(ref.value, ast.Name)
                        and ref.value.id == "self"
                    ):
                        callee = ref.attr
                    if callee in defs and callee not in visited:
                        frontier.append(callee)
        return selected


# -- R016: unjoined thread/process handles -----------------------------------------

_HANDLE_SUFFIXES = (".Thread", ".Process", ".Timer")


def _handle_matches(call: ast.Call, resolve) -> bool:
    origin = resolve(call.func)
    if origin is None or not origin.endswith(_HANDLE_SUFFIXES):
        return False
    for kw in call.keywords:
        if (
            kw.arg == "daemon"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return False  # daemon threads are reaped at interpreter exit
    return True


_HANDLE_SPEC = ResourceSpec("handle", _handle_matches, frozenset({"join"}))


class R016JoinYourThreads(Rule):
    id = "R016"
    name = "join-your-threads"
    severity = Severity.WARNING
    description = (
        "A started non-daemon Thread/Process handle must reach join() or "
        "escape to an owner; dropping it leaks the worker past the "
        "function and hides its exceptions."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        resolve = _resolver(module)
        for context, func, cfg in function_cfgs(module.tree):
            analysis = ResourceAnalysis(cfg, [_HANDLE_SPEC], resolve)
            if not analysis.acquisitions:
                continue
            started = self._started_names(func)
            daemonized = self._daemonized_names(func)
            states = run_forward(cfg, analysis)
            at_exit = states.get(cfg.exit) or frozenset()
            for site in sorted(at_exit):
                acq = analysis.acquisitions[site]
                if acq.name not in started or acq.name in daemonized:
                    continue
                yield self.finding(
                    module, acq.node,
                    f"`{acq.name}` is started but can reach function exit "
                    "without join(); join it (with a timeout) or hand the "
                    "handle to an owner that will",
                    context,
                )

    @staticmethod
    def _started_names(func: ast.AST) -> set[str]:
        return {
            call.func.value.id
            for call in _calls(func)
            if isinstance(call.func, ast.Attribute)
            and call.func.attr == "start"
            and isinstance(call.func.value, ast.Name)
        }

    @staticmethod
    def _daemonized_names(func: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "daemon"
                    and isinstance(target.value, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True
                ):
                    names.add(target.value.id)
        return names


FLOW_RULES: tuple[type[Rule], ...] = (
    R011LockDiscipline,
    R012ForkSpawnSafeModuleState,
    R013ResourceLifetime,
    R014SeedTaint,
    R015NoBlockingInWorkers,
    R016JoinYourThreads,
)
