"""Per-function control-flow graphs with exceptional edges.

The flow-sensitive rules (R011-R016) need answers that a lexical AST
walk cannot give: *does this acquisition reach a release on every path,
including the path where a statement in between raises?*  This module
builds a small, precise-enough CFG for one function:

* **One statement per block.**  Functions are short; trading block
  fusion for per-statement dataflow states keeps the engine trivial and
  makes exceptional edges exact (the exception fires *at* a statement,
  between its predecessors' effects and its own).
* **Exceptional edges are first-class.**  Every statement that can
  raise gets an ``exc`` edge to the innermost handler, finally block, or
  the synthetic ``raise_exit`` — so "all CFG paths" really includes the
  path where ``segment.graph()`` throws between ``attach`` and ``close``.
* **`with` is desugared, not approximated.**  Each ``with`` item gets an
  *enter* block and two *exit* blocks (normal and exceptional), so the
  dataflow sees the acquire and the guaranteed release exactly where
  they happen; the same mechanism routes ``return``/``break``/
  ``continue`` through enclosing ``finally`` bodies (emitted as fresh
  copies per abrupt exit, which is what actually executes).

Nested function/class definitions are treated as opaque single
statements: a closure's body does not run where it is defined, and each
function gets its own CFG via :func:`function_cfgs`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CFG", "Block", "build_cfg", "can_raise", "expr_can_raise", "expr_token",
    "function_cfgs",
]

#: Block kinds.  ``stmt`` blocks carry a real AST statement; ``test``
#: blocks carry the condition expression of an if/while; ``assume-*``
#: blocks carry an if-test on the branch where it held (or failed), so
#: analyses can filter on `x is None`-style guards; ``with-enter`` and
#: ``with-exit`` carry an :class:`ast.withitem`; the rest are synthetic
#: and empty.
ENTRY, EXIT, RAISE_EXIT, STMT, TEST, WITH_ENTER, WITH_EXIT, JOIN = (
    "entry", "exit", "raise", "stmt", "test", "with-enter", "with-exit", "join",
)
ASSUME_TRUE, ASSUME_FALSE = "assume-true", "assume-false"


@dataclass
class Block:
    """One CFG node: a single statement (or synthetic marker)."""

    id: int
    kind: str
    node: ast.AST | None = None
    #: Normal-flow successors.
    succs: list[int] = field(default_factory=list)
    #: Exceptional successors: taken when ``node`` raises mid-execution.
    excs: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = getattr(self.node, "lineno", "?")
        return f"Block({self.id}, {self.kind}, line={where})"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: dict[int, Block] = {}
        self.entry = self._new(ENTRY).id
        self.exit = self._new(EXIT).id
        self.raise_exit = self._new(RAISE_EXIT).id

    def _new(self, kind: str, node: ast.AST | None = None) -> Block:
        block = Block(id=len(self.blocks), kind=kind, node=node)
        self.blocks[block.id] = block
        return block

    def successors(self, block_id: int, exceptional: bool = True) -> list[int]:
        block = self.blocks[block_id]
        return block.succs + (block.excs if exceptional else [])

    def statements(self) -> Iterator[Block]:
        """Blocks that carry a real statement (kind ``stmt``)."""
        for block in self.blocks.values():
            if block.kind == STMT:
                yield block

    def __len__(self) -> int:
        return len(self.blocks)


def expr_token(node: ast.expr) -> str | None:
    """A stable textual token for a simple lvalue-ish expression.

    ``self._lock`` -> ``"self._lock"``, ``lock`` -> ``"lock"``,
    ``a.b.c`` -> ``"a.b.c"``.  Returns ``None`` for anything that is not
    a dotted name chain (calls, subscripts), which the lock/resource
    analyses treat as untrackable.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# Statements that cannot raise on their own (their sub-expressions might;
# checked separately).
_SAFE_STMTS = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)
# Expression nodes that can raise at run time.  Name loads can raise
# NameError in principle; treating them as safe keeps straight-line
# assignment chains quiet without losing the edges that matter (calls,
# attribute/subscript access, arithmetic on arbitrary objects).
# ``Compare`` is handled separately: identity tests (``x is None``)
# cannot raise, while rich comparisons dispatch to arbitrary ``__eq__``.
_RAISING_EXPRS = (
    ast.Call, ast.Attribute, ast.Subscript, ast.BinOp, ast.Await,
    ast.Yield, ast.YieldFrom, ast.Starred, ast.FormattedValue,
)


def expr_can_raise(node: ast.AST) -> bool:
    """Conservatively: can evaluating this expression raise?"""
    for sub in ast.walk(node):
        if isinstance(sub, _RAISING_EXPRS):
            # A store/delete target (`a.b = x`, `d[k] = x`) raising means
            # a broken __setattr__/__setitem__; treating those as raising
            # would demand try/finally around every ownership handoff.
            # The value/slice children are walked on their own.
            if isinstance(sub, (ast.Attribute, ast.Subscript)) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                continue
            return True
        if isinstance(sub, ast.Compare) and any(
            not isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
        ):
            return True
    return False


def can_raise(stmt: ast.stmt) -> bool:
    """Conservatively: can executing this statement raise an exception?"""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, _SAFE_STMTS):
        return False
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Defining a function can only raise via default/decorator
        # evaluation; the body does not execute here.
        args = getattr(stmt, "args", None)
        probe: list[ast.AST] = [
            *getattr(stmt, "decorator_list", []),
            *(getattr(args, "defaults", None) or []),
            *(getattr(args, "kw_defaults", None) or []),
        ]
        return any(expr_can_raise(node) for node in probe if node is not None)
    for node in ast.walk(stmt):
        if isinstance(node, _RAISING_EXPRS):
            if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                continue
            return True
        if isinstance(node, ast.Compare) and any(
            not isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break  # nested bodies do not execute here
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch (at least) every ``Exception``?"""
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else None
        )
        if name in ("Exception", "BaseException"):
            return True
    return False


class _Frame:
    """One entry of the abrupt-exit routing stack.

    ``kind`` is ``"finally"`` (carries the finally suite, re-emitted per
    abrupt exit) or ``"with"`` (carries the with items, whose exit blocks
    are emitted per abrupt exit so releases stay on every path).
    """

    __slots__ = ("kind", "payload")

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind
        self.payload = payload


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        #: Innermost target for an in-flight exception.
        self.exc_target = self.cfg.raise_exit
        #: Stack of (break_target, continue_target, frames_depth).
        self.loops: list[tuple[int, int, int]] = []
        #: Enclosing finally/with frames, innermost last.
        self.frames: list[_Frame] = []

    # -- low-level helpers --------------------------------------------------------

    def _block(self, kind: str, node: ast.AST | None = None) -> Block:
        return self.cfg._new(kind, node)

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.cfg.blocks[src].succs:
            self.cfg.blocks[src].succs.append(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        if dst not in self.cfg.blocks[src].excs:
            self.cfg.blocks[src].excs.append(dst)

    # -- abrupt-exit routing ------------------------------------------------------

    def _unwind(self, from_block: int, depth: int) -> int:
        """Emit copies of the frames above ``depth`` (innermost first).

        Returns the block the final edge should leave from — the caller
        wires it to the real target (exit, loop head, ...).  This mirrors
        what CPython does: an abrupt exit runs every enclosing ``finally``
        suite and ``with`` exit on its way out.
        """
        current = from_block
        for frame in reversed(self.frames[depth:]):
            if frame.kind == "with":
                for item in reversed(frame.payload):
                    exit_block = self._block(WITH_EXIT, item)
                    self._edge(current, exit_block.id)
                    current = exit_block.id
            else:  # finally suite, re-emitted
                current = self._emit_suite_copy(frame.payload, current)
        return current

    def _emit_suite_copy(self, suite: list[ast.stmt], pred: int) -> int:
        """Emit a fresh copy of a finally suite after ``pred``; returns tail."""
        saved_exc = self.exc_target
        current: int | None = pred
        for stmt in suite:
            current = self._visit(stmt, current)
            if current is None:
                break
        self.exc_target = saved_exc
        # A finally suite that itself diverges (raise/return) swallows the
        # abrupt exit; model by returning a dead join block.
        if current is None:
            return self._block(JOIN).id
        return current

    # -- statement dispatch -------------------------------------------------------

    def _visit_suite(self, suite: list[ast.stmt], pred: int | None) -> int | None:
        current = pred
        for stmt in suite:
            if current is None:
                break  # unreachable code after return/raise/...
            current = self._visit(stmt, current)
        return current

    def _visit(self, stmt: ast.stmt, pred: int) -> int | None:
        """Wire ``stmt`` after block ``pred``; returns the fall-through block."""
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, pred)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, pred)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, pred)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, pred)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, pred)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, pred)
        return self._visit_simple(stmt, pred)

    def _visit_simple(self, stmt: ast.stmt, pred: int) -> int | None:
        block = self._block(STMT, stmt)
        self._edge(pred, block.id)
        if can_raise(stmt):
            self._exc_edge(block.id, self.exc_target)
        if isinstance(stmt, ast.Return):
            tail = self._unwind(block.id, 0)
            self._edge(tail, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            # ``raise`` transfers to the handler unconditionally; the
            # exc edge above already points there.
            self.cfg.blocks[block.id].succs = []
            self._exc_edge(block.id, self.exc_target)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                target, _, depth = self.loops[-1]
                tail = self._unwind(block.id, depth)
                self._edge(tail, target)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                _, target, depth = self.loops[-1]
                tail = self._unwind(block.id, depth)
                self._edge(tail, target)
            return None
        return block.id

    def _visit_if(self, stmt: ast.If, pred: int) -> int | None:
        test = self._block(TEST, stmt.test)
        self._edge(pred, test.id)
        if expr_can_raise(stmt.test):
            self._exc_edge(test.id, self.exc_target)
        assume_true = self._block(ASSUME_TRUE, stmt.test)
        self._edge(test.id, assume_true.id)
        assume_false = self._block(ASSUME_FALSE, stmt.test)
        self._edge(test.id, assume_false.id)
        then_tail = self._visit_suite(stmt.body, assume_true.id)
        else_tail = (
            self._visit_suite(stmt.orelse, assume_false.id)
            if stmt.orelse
            else assume_false.id
        )
        if then_tail is None and else_tail is None:
            return None
        join = self._block(JOIN)
        for tail in (then_tail, else_tail):
            if tail is not None:
                self._edge(tail, join.id)
        return join.id

    def _visit_while(self, stmt: ast.While, pred: int) -> int | None:
        head = self._block(TEST, stmt.test)
        self._edge(pred, head.id)
        if expr_can_raise(stmt.test):
            self._exc_edge(head.id, self.exc_target)
        after = self._block(JOIN)
        self.loops.append((after.id, head.id, len(self.frames)))
        body_tail = self._visit_suite(stmt.body, head.id)
        self.loops.pop()
        if body_tail is not None:
            self._edge(body_tail, head.id)
        else_tail = self._visit_suite(stmt.orelse, head.id) if stmt.orelse else head.id
        if else_tail is not None:
            self._edge(else_tail, after.id)
        return after.id

    def _visit_for(self, stmt: ast.For | ast.AsyncFor, pred: int) -> int | None:
        # The iterable evaluates once; the head re-binds the target each
        # iteration (and is where StopIteration ends the loop).
        head = self._block(STMT, stmt)
        self._edge(pred, head.id)
        self._exc_edge(head.id, self.exc_target)
        after = self._block(JOIN)
        self.loops.append((after.id, head.id, len(self.frames)))
        body_tail = self._visit_suite(stmt.body, head.id)
        self.loops.pop()
        if body_tail is not None:
            self._edge(body_tail, head.id)
        else_tail = self._visit_suite(stmt.orelse, head.id) if stmt.orelse else head.id
        if else_tail is not None:
            self._edge(else_tail, after.id)
        return after.id

    def _visit_with(self, stmt: ast.With | ast.AsyncWith, pred: int) -> int | None:
        current = pred
        for item in stmt.items:
            enter = self._block(WITH_ENTER, item)
            self._edge(current, enter.id)
            self._exc_edge(enter.id, self.exc_target)
            current = enter.id
        # Inside the body, an exception runs the exits before propagating.
        saved_exc = self.exc_target
        exc_chain = saved_exc
        for item in stmt.items:
            exc_exit = self._block(WITH_EXIT, item)
            self._edge(exc_exit.id, exc_chain)
            exc_chain = exc_exit.id
        self.exc_target = exc_chain
        self.frames.append(_Frame("with", list(stmt.items)))
        body_tail = self._visit_suite(stmt.body, current)
        self.frames.pop()
        self.exc_target = saved_exc
        if body_tail is None:
            return None
        current = body_tail
        for item in reversed(stmt.items):
            normal_exit = self._block(WITH_EXIT, item)
            self._edge(current, normal_exit.id)
            current = normal_exit.id
        return current

    def _visit_try(self, stmt: ast.Try, pred: int) -> int | None:
        has_finally = bool(stmt.finalbody)
        saved_exc = self.exc_target

        # Exceptional path through the finally suite, shared by every
        # raise site in the try/handlers.
        if has_finally:
            exc_finally_entry = self._block(JOIN)
            tail = self._emit_suite_copy(stmt.finalbody, exc_finally_entry.id)
            self._edge(tail, saved_exc)
            outer_exc = exc_finally_entry.id
        else:
            outer_exc = saved_exc

        # Handler dispatch: a raising statement in the try body lands
        # here; each handler (or, unhandled, the outer target) follows.
        if stmt.handlers:
            dispatch = self._block(JOIN)
            handler_exc = outer_exc
        else:
            dispatch = None
            handler_exc = outer_exc
        catch_all = any(_is_catch_all(h) for h in stmt.handlers)

        if has_finally:
            self.frames.append(_Frame("finally", list(stmt.finalbody)))
        self.exc_target = dispatch.id if dispatch is not None else handler_exc
        body_tail = self._visit_suite(stmt.body, pred)
        self.exc_target = saved_exc

        tails: list[int] = []
        if stmt.handlers:
            self.exc_target = handler_exc
            for handler in stmt.handlers:
                h_block = self._block(STMT, handler)
                self._edge(dispatch.id, h_block.id)
                h_tail = self._visit_suite(handler.body, h_block.id)
                if h_tail is not None:
                    tails.append(h_tail)
            # No handler matched: propagate outward.  A catch-all
            # (`except:` / `except Exception`) leaves only the
            # BaseException sliver, which cleanup rules ignore — an
            # analysis flagging `except Exception: release(); raise` as
            # leaky would condemn every correct cleanup idiom.
            if not catch_all:
                self._edge(dispatch.id, handler_exc)
            self.exc_target = saved_exc

        # else-clause runs only after a clean try body.
        if body_tail is not None and stmt.orelse:
            self.exc_target = dispatch.id if dispatch is not None else handler_exc
            body_tail = self._visit_suite(stmt.orelse, body_tail)
            self.exc_target = saved_exc
        if body_tail is not None:
            tails.append(body_tail)

        if has_finally:
            self.frames.pop()
        if not tails:
            return None
        join = self._block(JOIN)
        for tail in tails:
            self._edge(tail, join.id)
        if has_finally:
            return self._emit_suite_copy(stmt.finalbody, join.id)
        return join.id

    def _visit_match(self, stmt: ast.Match, pred: int) -> int | None:
        subject = self._block(STMT, stmt)
        self._edge(pred, subject.id)
        self._exc_edge(subject.id, self.exc_target)
        join = self._block(JOIN)
        for case in stmt.cases:
            tail = self._visit_suite(case.body, subject.id)
            if tail is not None:
                self._edge(tail, join.id)
        # No case may match at all.
        self._edge(subject.id, join.id)
        return join.id

    # -- entry point --------------------------------------------------------------

    def build(self) -> CFG:
        tail = self._visit_suite(self.cfg.func.body, self.cfg.entry)
        if tail is not None:
            self._edge(tail, self.cfg.exit)
        return self.cfg


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The control-flow graph of one function body."""
    return _Builder(func).build()


def function_cfgs(
    tree: ast.AST, prefix: str = ""
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """Yield ``(dotted_context, func, cfg)`` for every function under ``tree``.

    The context matches the ``scoped_nodes`` convention used by findings:
    ``Class.method`` for methods, ``outer.inner`` for nested functions.
    Functions are found anywhere — inside classes, branches, handlers.
    """
    for child in ast.iter_child_nodes(tree):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = f"{prefix}.{child.name}" if prefix else child.name
            if not isinstance(child, ast.ClassDef):
                yield name, child, build_cfg(child)
            yield from function_cfgs(child, name)
        else:
            yield from function_cfgs(child, prefix)
