"""Analysis driver: scan, run rules, apply the baseline.

:func:`analyze` is the raw pass (all findings, no baseline);
:func:`run_analysis` is what the CLI and CI consume — it folds in the
baseline and answers "is the tree clean?" via :meth:`AnalysisResult.ok`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry, apply_baseline
from .config import AnalysisConfig
from .project import ProjectModel
from .rules import Finding, Rule
from .ruleset import RULE_ALIASES, default_rules

__all__ = [
    "AnalysisResult",
    "analyze",
    "default_baseline_path",
    "relevant_stale",
    "run_analysis",
    "valid_rule_ids",
]


def default_baseline_path() -> Path:
    """The checked-in baseline next to this package."""
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass
class AnalysisResult:
    findings: list[Finding]  # unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    baseline_problems: list[tuple[BaselineEntry, str]] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)
    rules: list[Rule] = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def ok(self) -> bool:
        """Clean: nothing unsuppressed, no stale or unjustified baseline."""
        return not (self.findings or self.stale or self.baseline_problems)

    def suppressed_with_justifications(self) -> list[tuple[Finding, str]]:
        by_key = {e.key(): e.justification for e in self.baseline.entries}
        return [(f, by_key.get(f.key(), "")) for f in self.suppressed]


def valid_rule_ids() -> list[str]:
    """Every selectable rule id, including retired aliases (R009 -> R013)."""
    ids = {r.id for r in default_rules()} | set(RULE_ALIASES)
    return sorted(ids)


def _canonical_ids(rule_ids: tuple[str, ...]) -> set[str]:
    """Resolve aliases; raise ValueError naming the valid ids on unknowns."""
    known = set(valid_rule_ids())
    unknown = set(rule_ids) - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(sorted(known))})"
        )
    return {RULE_ALIASES.get(rid, rid) for rid in rule_ids}


def _selected_rules(config: AnalysisConfig) -> list[Rule]:
    rules = default_rules()
    if config.rules is None:
        return rules
    wanted = _canonical_ids(tuple(config.rules))
    return [r for r in rules if r.id in wanted]


def _module_findings(
    config: AnalysisConfig,
    module,
    project: ProjectModel,
    rules: list[Rule],
) -> list[Finding]:
    """One module's findings under the config's scopes and rule selection."""
    findings: list[Finding] = []
    for rule in rules:
        if config.in_scope(rule.id, module.relpath):
            findings.extend(rule.check(module, project))
    if config.rules is not None:
        # A rule may emit findings under an alias id (R013 tags its shm
        # findings R009); match the selection through the alias map.
        wanted = _canonical_ids(tuple(config.rules))
        findings = [
            f for f in findings if RULE_ALIASES.get(f.rule, f.rule) in wanted
        ]
    findings.sort()
    return findings


def analyze(
    config: AnalysisConfig,
    project: ProjectModel | None = None,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], list[Rule], ProjectModel]:
    """Run the (scoped) rules over the tree; returns every finding."""
    if project is None:
        project = ProjectModel.scan(config.root, config.package)
    if rules is None:
        rules = _selected_rules(config)
    findings: list[Finding] = []
    for module in project:
        findings.extend(_module_findings(config, module, project, rules))
    findings.sort()
    return findings, rules, project


def relevant_stale(
    stale: list[BaselineEntry], config: AnalysisConfig
) -> list[BaselineEntry]:
    """Drop stale entries for rules outside the run's ``--rule`` selection.

    A selected run never produces findings for unselected rules, so their
    baseline entries would always look stale; that is not evidence the
    entry rotted.
    """
    if config.rules is None:
        return stale
    wanted = _canonical_ids(tuple(config.rules))
    return [e for e in stale if RULE_ALIASES.get(e.rule, e.rule) in wanted]


def run_analysis(
    config: AnalysisConfig,
    baseline_path: Path | str | None = None,
) -> AnalysisResult:
    """The full pipeline: scan, lint, fold in the baseline."""
    findings, rules, project = analyze(config)
    baseline = Baseline.load(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    unsuppressed, suppressed, stale = apply_baseline(findings, baseline)
    stale = relevant_stale(stale, config)
    return AnalysisResult(
        findings=unsuppressed,
        suppressed=suppressed,
        stale=stale,
        baseline_problems=baseline.problems(),
        baseline=baseline,
        rules=rules,
        modules_scanned=len(project.modules),
    )
