"""Analysis driver: scan, run rules, apply the baseline.

:func:`analyze` is the raw pass (all findings, no baseline);
:func:`run_analysis` is what the CLI and CI consume — it folds in the
baseline and answers "is the tree clean?" via :meth:`AnalysisResult.ok`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry, apply_baseline
from .config import AnalysisConfig
from .project import ProjectModel
from .rules import Finding, Rule
from .ruleset import default_rules

__all__ = ["AnalysisResult", "analyze", "default_baseline_path", "run_analysis"]


def default_baseline_path() -> Path:
    """The checked-in baseline next to this package."""
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass
class AnalysisResult:
    findings: list[Finding]  # unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    baseline_problems: list[tuple[BaselineEntry, str]] = field(default_factory=list)
    baseline: Baseline = field(default_factory=Baseline)
    rules: list[Rule] = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def ok(self) -> bool:
        """Clean: nothing unsuppressed, no stale or unjustified baseline."""
        return not (self.findings or self.stale or self.baseline_problems)

    def suppressed_with_justifications(self) -> list[tuple[Finding, str]]:
        by_key = {e.key(): e.justification for e in self.baseline.entries}
        return [(f, by_key.get(f.key(), "")) for f in self.suppressed]


def _selected_rules(config: AnalysisConfig) -> list[Rule]:
    rules = default_rules()
    if config.rules is None:
        return rules
    wanted = set(config.rules)
    unknown = wanted - {r.id for r in rules}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [r for r in rules if r.id in wanted]


def analyze(
    config: AnalysisConfig,
    project: ProjectModel | None = None,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], list[Rule], ProjectModel]:
    """Run the (scoped) rules over the tree; returns every finding."""
    if project is None:
        project = ProjectModel.scan(config.root, config.package)
    if rules is None:
        rules = _selected_rules(config)
    findings: list[Finding] = []
    for module in project:
        for rule in rules:
            if config.in_scope(rule.id, module.relpath):
                findings.extend(rule.check(module, project))
    findings.sort()
    return findings, rules, project


def run_analysis(
    config: AnalysisConfig,
    baseline_path: Path | str | None = None,
) -> AnalysisResult:
    """The full pipeline: scan, lint, fold in the baseline."""
    findings, rules, project = analyze(config)
    baseline = Baseline.load(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    unsuppressed, suppressed, stale = apply_baseline(findings, baseline)
    return AnalysisResult(
        findings=unsuppressed,
        suppressed=suppressed,
        stale=stale,
        baseline_problems=baseline.problems(),
        baseline=baseline,
        rules=rules,
        modules_scanned=len(project.modules),
    )
