"""Forward dataflow over the per-function CFG.

A tiny worklist engine plus the three analyses the flow rules share:

* :class:`LockSetAnalysis` — *must*-held lock tokens at each block
  (join = intersection), fed by ``with lock:`` desugarings and explicit
  ``acquire``/``release`` calls.  R011 asks it "which locks are held at
  this attribute write?".
* :class:`ResourceAnalysis` — *may*-held resource acquisition sites
  (join = union), with release and ownership-escape kills.  R013/R009
  ask it "can this acquisition reach function exit — normal or raising —
  still held?".
* :class:`TaintAnalysis` — reaching taint kinds per name (join = union
  of per-name sets).  R014 asks it "does a seed-derived value meet a
  wall-clock/id()/hash-derived one?".

States are immutable mappings; transfer functions are per-block (one
statement per block, so there is no intra-block bookkeeping).  On
exceptional edges the engine propagates ``join(in, out)`` — the raise
may fire before or after the statement's effect, so both must flow.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterator

from .cfg import (
    ASSUME_FALSE,
    ASSUME_TRUE,
    CFG,
    STMT,
    TEST,
    WITH_ENTER,
    WITH_EXIT,
    Block,
    expr_token,
)

__all__ = [
    "LockSetAnalysis",
    "ResourceAnalysis",
    "ResourceSpec",
    "TaintAnalysis",
    "run_forward",
]


class ForwardAnalysis:
    """Interface: a lattice plus a per-block transfer function."""

    def initial(self) -> Any:  # state at the entry block
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, block: Block, state: Any) -> Any:
        raise NotImplementedError

    def exc_state(self, block: Block, in_state: Any, out_state: Any) -> Any:
        """State carried on this block's exceptional edges.

        The default is ``join(in, out)``: the raise may fire before or
        after the statement's effect, so both must flow.  Analyses with
        effects that should (or should not) commit when the statement
        raises override this per block.
        """
        return self.join(in_state, out_state)


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, Any]:
    """Fixed-point in-states for every block; unreachable blocks map to None.

    ``None`` is the bottom element (unreachable); ``analysis.join`` never
    sees it.  Out-states are recomputed on demand via ``transfer`` —
    callers usually only need the in-state at the statement they inspect.
    """
    in_states: dict[int, Any] = {bid: None for bid in cfg.blocks}
    in_states[cfg.entry] = analysis.initial()
    worklist = [cfg.entry]
    while worklist:
        bid = worklist.pop()
        state = in_states[bid]
        if state is None:
            continue
        block = cfg.blocks[bid]
        out = analysis.transfer(block, state)
        for succ, flowed in _flow_edges(block, state, out, analysis):
            merged = flowed if in_states[succ] is None else analysis.join(
                in_states[succ], flowed
            )
            if merged != in_states[succ]:
                in_states[succ] = merged
                worklist.append(succ)
    return in_states


def _flow_edges(
    block: Block, in_state: Any, out_state: Any, analysis: ForwardAnalysis
) -> Iterator[tuple[int, Any]]:
    """(successor, state) pairs: normal edges carry out, exc edges carry both."""
    for succ in block.succs:
        yield succ, out_state
    if block.excs:
        partial = analysis.exc_state(block, in_state, out_state)
        for succ in block.excs:
            yield succ, partial


# -- lock sets ---------------------------------------------------------------------

#: Constructors whose instances guard critical sections via ``with`` /
#: ``acquire``.  Condition wraps a lock, so ``with self._dispatch:``
#: counts as holding that token.
LOCK_FACTORY_SUFFIXES = (
    ".Lock", ".RLock", ".Condition", ".Semaphore", ".BoundedSemaphore",
)


def is_lock_factory(origin: str | None) -> bool:
    return origin is not None and (
        origin.endswith(LOCK_FACTORY_SUFFIXES)
        or origin in {s[1:] for s in LOCK_FACTORY_SUFFIXES}
    )


class LockSetAnalysis(ForwardAnalysis):
    """Must-held lock tokens (``"self._lock"``-style strings).

    ``known`` restricts tracking to tokens known to be locks; when empty
    every ``with``-entered dotted name is tracked (fixture-friendly).
    """

    def __init__(self, known: frozenset[str] | None = None) -> None:
        self.known = known

    def _tracks(self, token: str | None) -> bool:
        if token is None:
            return False
        return self.known is None or token in self.known

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a & b

    def transfer(self, block: Block, state: frozenset[str]) -> frozenset[str]:
        if block.kind == WITH_ENTER:
            token = expr_token(block.node.context_expr)
            if self._tracks(token):
                return state | {token}
        elif block.kind == WITH_EXIT:
            token = expr_token(block.node.context_expr)
            if token is not None:
                return state - {token}
        elif block.kind == STMT:
            for call in _calls(block.node):
                if isinstance(call.func, ast.Attribute):
                    token = expr_token(call.func.value)
                    if call.func.attr == "acquire" and self._tracks(token):
                        state = state | {token}
                    elif call.func.attr == "release" and token is not None:
                        state = state - {token}
        return state


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


# -- resource lifetimes ------------------------------------------------------------


class ResourceSpec:
    """What counts as acquiring and releasing one kind of resource.

    ``matches(call, resolve)`` decides whether a call expression acquires
    the resource (``resolve`` maps the call's func to a dotted origin
    through the module's import aliases); ``releases`` are the method
    names that end the obligation.
    """

    def __init__(
        self,
        kind: str,
        matches: Callable[[ast.Call, Callable[[ast.expr], str | None]], bool],
        releases: frozenset[str],
    ) -> None:
        self.kind = kind
        self.matches = matches
        self.releases = releases


class _Acquisition:
    """One acquisition site within a function."""

    __slots__ = ("site", "name", "spec", "node")

    def __init__(self, site: int, name: str, spec: ResourceSpec, node: ast.AST) -> None:
        self.site = site
        self.name = name
        self.spec = spec
        self.node = node


class ResourceAnalysis(ForwardAnalysis):
    """May-held acquisition sites (frozenset of site ids).

    A site leaves the state when its variable is released (any method in
    the spec's release set), re-bound by ``with x:``, or *escapes* —
    returned, yielded, aliased, stored into an attribute/subscript, or
    passed as an argument to another call.  Escape transfers ownership:
    whoever received the object is now responsible, and flagging here
    would be noise.
    """

    def __init__(
        self,
        cfg: CFG,
        specs: list[ResourceSpec],
        resolve: Callable[[ast.expr], str | None],
    ) -> None:
        self.cfg = cfg
        self.specs = specs
        self.resolve = resolve
        self.acquisitions: dict[int, _Acquisition] = {}
        self._by_block: dict[int, _Acquisition] = {}
        self._index()

    def _index(self) -> None:
        for block in self.cfg.statements():
            stmt = block.node
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            for spec in self.specs:
                if spec.matches(value, self.resolve):
                    acq = _Acquisition(len(self.acquisitions), target.id, spec, value)
                    self.acquisitions[acq.site] = acq
                    self._by_block[block.id] = acq
                    break

    def initial(self) -> frozenset[int]:
        return frozenset()

    def join(self, a: frozenset[int], b: frozenset[int]) -> frozenset[int]:
        return a | b

    def _sites_named(self, state: frozenset[int], name: str) -> frozenset[int]:
        return frozenset(
            s for s in state if self.acquisitions[s].name == name
        )

    def transfer(self, block: Block, state: frozenset[int]) -> frozenset[int]:
        acq = self._by_block.get(block.id)
        if acq is not None:
            # Re-binding the name drops tracking of older sites under it
            # (they are reported separately if they leaked before this).
            return (state - self._sites_named(state, acq.name)) | {acq.site}
        node = block.node
        if node is None:
            return state
        if block.kind == WITH_ENTER:
            item = node
            token = expr_token(item.context_expr)
            if token is not None:
                state = state - self._sites_named(state, token)
            return state
        if block.kind in (ASSUME_TRUE, ASSUME_FALSE):
            # On the branch where `x is None` held (or `x is not None`
            # failed), no acquisition is bound to x — drop its sites, so
            # the `if cached is None: ... acquire ...` idiom doesn't drag
            # a phantom handle around the enclosing loop.
            name = _none_guard_name(node, positive=block.kind == ASSUME_TRUE)
            if name is not None:
                state = state - self._sites_named(state, name)
            return state
        if block.kind not in (STMT, TEST):
            return state
        # A plain rebind (`x = None`, `x = other`) drops tracking: the
        # handle is gone from this frame, and sites that leaked before
        # the rebind are reported by their own paths.
        if isinstance(node, ast.Assign) and block.id not in self._by_block:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state = state - self._sites_named(state, target.id)
        # Releases: x.close() / x.unlink() / spec-specific.
        for call in _calls(node):
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                receiver = call.func.value.id
                for site in self._sites_named(state, receiver):
                    if call.func.attr in self.acquisitions[site].spec.releases:
                        state = state - {site}
        # Escapes.
        for name in _escaping_names(node):
            state = state - self._sites_named(state, name)
        return state

    def exc_state(
        self, block: Block, in_state: frozenset[int], out_state: frozenset[int]
    ) -> frozenset[int]:
        """Exceptional-edge state: effects commit, acquisitions do not.

        If the acquiring call itself raises, nothing was acquired — carry
        the in-state.  For every other statement carry the out-state:
        a release that raises still ended the obligation (no static fix
        can help a failing ``close()``), and demanding that ownership
        handoffs (``self._cache[k] = x``) be individually guarded against
        impossible raises would flag every correct try/finally.  What
        remains flagged is exactly the real hazard: a statement that can
        raise between acquire and release/handoff without performing
        either.
        """
        if block.id in self._by_block:
            return in_state
        return out_state


def _none_guard_name(test: ast.AST, positive: bool) -> str | None:
    """The name ``x`` when this branch proved ``x`` is ``None``.

    ``x is None`` on the true branch, ``x is not None`` on the false
    branch.  Anything more complex returns ``None`` (no filtering).
    """
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return None
    op = test.ops[0]
    if positive and isinstance(op, ast.Is):
        return test.left.id
    if not positive and isinstance(op, ast.IsNot):
        return test.left.id
    return None


def _escaping_names(stmt: ast.AST) -> Iterator[str]:
    """Names whose bound object escapes this statement's scope of care."""
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        yield from _transfer_names(stmt.value)
    if isinstance(stmt, ast.Assign):
        # Aliasing (y = x) and container/attribute stores (self.a = x,
        # d[k] = x) both hand the object to someone else, as does packing
        # into a container display (t = (x, y)).  A plain
        # ``x = x.method()`` does not escape x through the receiver, and
        # ``self.k = x.name`` hands off a *derived value*, not x.
        escapes_lhs = any(
            not isinstance(t, ast.Name) for t in stmt.targets
        )
        if escapes_lhs or isinstance(stmt.value, ast.Name):
            yield from _transfer_names(stmt.value)
        else:
            yield from _display_names(stmt.value)
    for sub in ast.walk(stmt if not isinstance(stmt, ast.Assign) else stmt.value):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
            yield from _transfer_names(sub.value)
        elif isinstance(sub, ast.Call):
            # Arguments escape; the receiver of a method call does not.
            for arg in sub.args:
                yield from _transfer_names(arg)
            for kw in sub.keywords:
                yield from _transfer_names(kw.value)


def _transfer_names(expr: ast.expr) -> Iterator[str]:
    """Names whose *object* is handed over by this expression.

    Ownership transfers through the object itself — a direct name or a
    name packed into a container display.  ``seg.name`` or ``len(seg.buf)``
    passes a derived value; the caller still owns (and must release) the
    resource, so attribute/subscript reads do not count.
    """
    if isinstance(expr, ast.Name):
        yield expr.id
    else:
        yield from _display_names(expr)


def _display_names(expr: ast.expr) -> Iterator[str]:
    """Names stored directly into a tuple/list/set/dict display."""
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for elt in expr.elts:
            if isinstance(elt, ast.Name):
                yield elt.id
            else:
                yield from _display_names(elt)
    elif isinstance(expr, ast.Dict):
        for value in expr.values:
            if isinstance(value, ast.Name):
                yield value.id
            elif value is not None:
                yield from _display_names(value)


# -- taint -------------------------------------------------------------------------


class TaintAnalysis(ForwardAnalysis):
    """Per-name taint kinds: which of ``sources``' labels reach each name.

    ``sources`` maps a label (e.g. ``"seed"``, ``"impure"``) to a
    predicate over call origins; parameters listed in ``param_taints``
    start tainted.  The state is a tuple of sorted ``(name, label)``
    pairs (hashable, cheap to join).
    """

    def __init__(
        self,
        sources: dict[str, Callable[[str | None, ast.Call], bool]],
        resolve: Callable[[ast.expr], str | None],
        param_taints: dict[str, frozenset[str]] | None = None,
    ) -> None:
        self.sources = sources
        self.resolve = resolve
        self.param_taints = param_taints or {}

    def initial(self) -> frozenset[tuple[str, str]]:
        pairs = set()
        for name, labels in self.param_taints.items():
            for label in labels:
                pairs.add((name, label))
        return frozenset(pairs)

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def expr_taints(
        self, expr: ast.expr, state: frozenset[tuple[str, str]]
    ) -> frozenset[str]:
        """Every taint label reaching any part of ``expr`` under ``state``."""
        labels: set[str] = set()
        by_name: dict[str, set[str]] = {}
        for name, label in state:
            by_name.setdefault(name, set()).add(label)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                labels |= by_name.get(sub.id, set())
            elif isinstance(sub, ast.Call):
                origin = self.resolve(sub.func)
                for label, pred in self.sources.items():
                    if pred(origin, sub):
                        labels.add(label)
        return frozenset(labels)

    def transfer(self, block: Block, state: frozenset) -> frozenset:
        node = block.node
        if block.kind != STMT or node is None:
            return state
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], node.iter
        if value is None:
            return state
        labels = self.expr_taints(value, state)
        if isinstance(node, ast.AugAssign):
            # x += e keeps x's existing taints and adds e's.
            for t in targets:
                if isinstance(t, ast.Name):
                    labels = labels | {
                        lb for (n, lb) in state if n == t.id
                    }
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    state = frozenset(
                        (n, lb) for (n, lb) in state if n != name_node.id
                    ) | frozenset((name_node.id, lb) for lb in labels)
        return state
