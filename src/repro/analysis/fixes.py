"""Autofix engine: mechanical rewrites for a subset of the ruleset.

Three rules have fixes that are safe to apply without judgment:

* **R002** — wall-clock calls with a drop-in ``repro.obs.clock``
  replacement (``time.time()`` -> ``wall_time()``,
  ``time.perf_counter()``/``time.monotonic()`` -> ``monotonic_time()``),
  adding the import when missing.  Variants with different return types
  (``*_ns``, ``datetime.*``) are left for a human.
* **R010** — metric/span name rewrites (snake-case-ify, append a
  counter's ``_total``, strip a gauge's).  Histogram unit suffixes are
  not guessable, and bucket-hoisting moves code, so neither is touched.
* **R013/R009** — wrap ``x = <acquire>(...)`` in ``with ... as x:`` when
  the CFG-shaped safety conditions hold: single-name assign, every use
  of ``x`` in the same statement list immediately after the assign, no
  use anywhere later in the enclosing scope, and the re-linted module
  proves the finding gone without introducing new ones.

Every fixed module must re-parse, and every R013 fix is verified by
re-running the rule on the rewritten source — a fix that does not
eliminate its finding (or creates another) is discarded, never applied.

The engine plans edits per module, applies them bottom-up so earlier
edits cannot shift later offsets, and renders a unified diff for
``--fix --dry-run`` preview (CI gates on that diff being empty).
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path

from .config import AnalysisConfig
from .project import ModuleInfo, ProjectModel, qualified_call_name
from .rules import Finding

__all__ = ["FIXABLE_RULES", "FixPlan", "ModuleFix", "plan_fixes"]

#: Rule ids the engine can rewrite (R009 is R013's legacy shm alias).
FIXABLE_RULES = frozenset({"R002", "R009", "R010", "R013"})

_CLOCK_REWRITES = {
    "time.time": "wall_time",
    "time.perf_counter": "monotonic_time",
    "time.monotonic": "monotonic_time",
}
_CLOCK_MODULE = "repro.obs.clock"


@dataclass(order=True)
class _Edit:
    """Replace [start, end) of the source (1-based lines, 0-based cols)."""

    line: int
    col: int
    end_line: int
    end_col: int
    text: str = field(compare=False)


def _apply_edits(source: str, edits: list[_Edit]) -> str:
    lines = source.splitlines(keepends=True)
    for edit in sorted(edits, reverse=True):
        head = lines[edit.line - 1][: edit.col]
        tail = lines[edit.end_line - 1][edit.end_col :]
        lines[edit.line - 1 : edit.end_line] = [head + edit.text + tail]
    return "".join(lines)


def _node_source(source_lines: list[str], node: ast.AST) -> str:
    """Verbatim source of a located node (may span lines)."""
    if node.lineno == node.end_lineno:
        return source_lines[node.lineno - 1][node.col_offset : node.end_col_offset]
    parts = [source_lines[node.lineno - 1][node.col_offset :]]
    parts += source_lines[node.lineno : node.end_lineno - 1]
    parts.append(source_lines[node.end_lineno - 1][: node.end_col_offset])
    return "".join(parts)


def _snakeify(name: str) -> str:
    out = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", name)
    out = re.sub(r"[^A-Za-z0-9.]+", "_", out).lower()
    out = re.sub(r"_+", "_", out).strip("_")
    return out


def _fixed_metric_name(kind: str, name: str) -> str | None:
    """The contract-conforming rename, or ``None`` when not mechanical."""
    if kind == "span":
        new = ".".join(p for p in (_snakeify(part) for part in name.split(".")) if p)
    else:
        new = _snakeify(name.replace(".", "_"))
        if kind == "counter" and not new.endswith("_total"):
            new += "_total"
        elif kind == "gauge" and new.endswith("_total"):
            new = new[: -len("_total")]
    if not new:
        return None
    from .ruleset import R010MetricNamingContract

    if R010MetricNamingContract._name_problem(kind, new) is not None:
        return None  # e.g. histogram missing a unit suffix: not guessable
    return new


@dataclass
class ModuleFix:
    """All accepted rewrites for one module."""

    path: Path
    relpath: str
    original: str
    fixed: str
    findings_fixed: list[Finding]

    def diff(self) -> str:
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=f"a/{self.relpath}",
                tofile=f"b/{self.relpath}",
            )
        )


@dataclass
class FixPlan:
    """The full set of module rewrites one ``--fix`` run would make."""

    modules: list[ModuleFix]
    skipped: list[Finding]  # fixable-rule findings the engine declined

    @property
    def fixed_count(self) -> int:
        return sum(len(m.findings_fixed) for m in self.modules)

    def diff(self) -> str:
        return "".join(m.diff() for m in self.modules)

    def apply(self) -> list[str]:
        """Write every rewritten module; returns the relpaths touched."""
        touched = []
        for mod in self.modules:
            mod.path.write_text(mod.fixed, encoding="utf-8")
            touched.append(mod.relpath)
        return touched


def plan_fixes(
    config: AnalysisConfig,
    findings: list[Finding],
    project: ProjectModel | None = None,
) -> FixPlan:
    """Plan (but do not write) fixes for every fixable finding."""
    if project is None:
        project = ProjectModel.scan(config.root, config.package)
    by_module: dict[str, ModuleInfo] = {m.relpath: m for m in project}
    fixes: list[ModuleFix] = []
    skipped: list[Finding] = []
    wanted = [f for f in findings if f.rule in FIXABLE_RULES]
    by_path: dict[str, list[Finding]] = {}
    for f in wanted:
        by_path.setdefault(f.path, []).append(f)
    for relpath, module_findings in sorted(by_path.items()):
        module = by_module.get(relpath)
        if module is None:
            skipped.extend(module_findings)
            continue
        fix = _fix_module(module, module_findings, skipped)
        if fix is not None:
            fixes.append(fix)
    return FixPlan(modules=fixes, skipped=skipped)


def _fix_module(
    module: ModuleInfo, findings: list[Finding], skipped: list[Finding]
) -> ModuleFix | None:
    source = module.path.read_text(encoding="utf-8")
    lines = source.splitlines(keepends=True)
    edits: list[_Edit] = []
    fixed: list[Finding] = []
    clock_imports: set[str] = set()
    with_wraps: list[Finding] = []

    for finding in sorted(findings):
        if finding.rule == "R002":
            edit, name = _plan_clock_fix(module, lines, finding)
            if edit is not None:
                edits.append(edit)
                clock_imports.add(name)
                fixed.append(finding)
            else:
                skipped.append(finding)
        elif finding.rule == "R010":
            edit = _plan_name_fix(module, finding)
            if edit is not None:
                edits.append(edit)
                fixed.append(finding)
            else:
                skipped.append(finding)
        else:  # R013 / R009
            with_wraps.append(finding)

    if clock_imports:
        needed = {
            n for n in clock_imports
            if module.aliases.get(n) != f"{_CLOCK_MODULE}.{n}"
        }
        if any(_name_is_taken(module, n) for n in needed):
            # A clock name is already bound to something else; rewriting
            # would silently call the wrong thing.  Drop this module's
            # clock fixes rather than guess.
            for f in [f for f in fixed if f.rule == "R002"]:
                fixed.remove(f)
                skipped.append(f)
            edits = [e for e in edits if not _is_clock_edit(e)]
        elif needed:
            edits.append(_import_edit(module, needed))

    for finding in with_wraps:
        edit = _plan_with_wrap(module, lines, finding)
        if edit is not None:
            edits.append(edit)
            fixed.append(finding)
        else:
            skipped.append(finding)

    if not edits or not fixed:
        return None
    new_source = _apply_edits(source, edits)
    original_keys = {
        (f.rule, f.context, f.message)
        for f in findings
        if f.rule in ("R009", "R013")
    }
    if not _verify(module, new_source, fixed, original_keys):
        skipped.extend(fixed)
        return None
    return ModuleFix(
        path=module.path, relpath=module.relpath,
        original=source, fixed=new_source, findings_fixed=fixed,
    )


def _is_clock_edit(edit: _Edit) -> bool:
    return edit.text in set(_CLOCK_REWRITES.values())


def _name_is_taken(module: ModuleInfo, name: str) -> bool:
    """``name`` is already bound in the module to something else."""
    if name in module.aliases:
        return module.aliases[name] != f"{_CLOCK_MODULE}.{name}"
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name == name:
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
    return False


def _call_at(module: ModuleInfo, line: int, col: int) -> ast.Call | None:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and node.lineno == line
            and node.col_offset == col
        ):
            return node
    return None


# -- R002: clock rewrites ----------------------------------------------------------


def _plan_clock_fix(
    module: ModuleInfo, lines: list[str], finding: Finding
) -> tuple[_Edit | None, str]:
    call = _call_at(module, finding.line, finding.col)
    if call is None or call.args or call.keywords:
        return None, ""
    origin = qualified_call_name(call.func, module.aliases)
    replacement = _CLOCK_REWRITES.get(origin or "")
    if replacement is None:
        return None, ""
    func = call.func
    return (
        _Edit(func.lineno, func.col_offset, func.end_lineno, func.end_col_offset,
              replacement),
        replacement,
    )


def _import_edit(module: ModuleInfo, names: set[str]) -> _Edit:
    """Insert ``from repro.obs.clock import ...`` after the last top import."""
    stmt = f"from {_CLOCK_MODULE} import {', '.join(sorted(names))}\n"
    last_import = 0
    for node in module.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = node.end_lineno
        elif last_import:
            break
    if last_import == 0 and module.tree.body:
        first = module.tree.body[0]
        if isinstance(first, ast.Expr) and isinstance(first.value, ast.Constant):
            last_import = first.end_lineno  # after the module docstring
    return _Edit(last_import + 1, 0, last_import + 1, 0, stmt)


# -- R010: metric name rewrites ----------------------------------------------------


def _plan_name_fix(module: ModuleInfo, finding: Finding) -> _Edit | None:
    if "bucket sequence" in finding.message:
        return None  # hoisting code out of a loop is not mechanical
    call = _call_at(module, finding.line, finding.col)
    if call is None or not call.args:
        return None
    from .ruleset import R010MetricNamingContract

    kind = R010MetricNamingContract._factory_kind(call, module)
    name_node = call.args[0]
    if kind is None or not isinstance(name_node, ast.Constant):
        return None
    if not isinstance(name_node.value, str):
        return None
    new = _fixed_metric_name(kind, name_node.value)
    if new is None:
        return None
    return _Edit(
        name_node.lineno, name_node.col_offset,
        name_node.end_lineno, name_node.end_col_offset,
        f'"{new}"',
    )


# -- R013/R009: with-wrapping ------------------------------------------------------


def _supports_with(origin: str | None) -> bool:
    """Only wrap acquisitions whose object is a known context manager.

    ``open``-family handles and sockets are; ``SharedGraphSegment`` is
    (``__exit__`` closes and unlinks); stdlib
    ``multiprocessing.shared_memory.SharedMemory`` is NOT — a wrap there
    would pass the static re-check and crash at run time.
    """
    if origin is None:
        return False
    from .flowrules import _FILE_OPEN_ORIGINS

    if origin in _FILE_OPEN_ORIGINS:
        return True
    if origin.endswith((".create_connection", "socket.socket")):
        return True
    return ".SharedGraphSegment." in f".{origin}."


def _plan_with_wrap(
    module: ModuleInfo, lines: list[str], finding: Finding
) -> _Edit | None:
    call = _call_at(module, finding.line, finding.col)
    if call is None:
        return None
    origin = qualified_call_name(call.func, module.aliases)
    if origin is None and isinstance(call.func, ast.Name):
        origin = call.func.id  # builtin `open` is never imported
    if not _supports_with(origin):
        return None
    located = _locate_assign(module.tree, call)
    if located is None:
        return None
    scope, body, index = located
    stmt = body[index]
    name = stmt.targets[0].id

    # Last statement in the same list that mentions the name.
    last = index
    for j in range(index + 1, len(body)):
        if any(
            isinstance(n, ast.Name) and n.id == name for n in ast.walk(body[j])
        ):
            last = j
    # If any path inside the span hands the object away (return fh,
    # sink(fh), self.x = fh), closing at the with's exit would hand over
    # a dead handle.  Those findings are not mechanically fixable.
    if _span_escapes(body[index + 1 : last + 1], name):
        return None
    # The name must be dead afterwards: no use anywhere in the enclosing
    # scope after the wrapped span, and not global/nonlocal.
    span_end_line = body[last].end_lineno
    for node in ast.walk(scope):
        if isinstance(node, (ast.Global, ast.Nonlocal)) and name in node.names:
            return None
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and node.lineno > span_end_line
        ):
            return None

    indent = lines[stmt.lineno - 1][: stmt.col_offset]
    value_src = _node_source(lines, stmt.value)
    header = f"with {value_src} as {name}:"
    if last == index:
        text = f"{header}\n{indent}    pass"
        return _Edit(
            stmt.lineno, stmt.col_offset, stmt.end_lineno, stmt.end_col_offset, text
        )
    # Re-indent every line of the span after the assign by one level.
    block_lines = []
    for lineno in range(body[index + 1].lineno, span_end_line + 1):
        raw = lines[lineno - 1]
        block_lines.append("    " + raw if raw.strip() else raw)
    text = f"{header}\n" + "".join(block_lines).rstrip("\n")
    end_col = len(lines[span_end_line - 1].rstrip("\n"))
    return _Edit(stmt.lineno, stmt.col_offset, span_end_line, end_col, text)


def _span_escapes(stmts: list[ast.stmt], name: str) -> bool:
    """Does any statement (however nested) transfer ownership of ``name``?"""
    from .dataflow import _escaping_names

    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.stmt) and name in set(_escaping_names(node)):
                return True
    return False


def _locate_assign(
    tree: ast.Module, call: ast.Call
) -> tuple[ast.AST, list[ast.stmt], int] | None:
    """(enclosing scope, statement list, index) of ``x = <call>``."""
    scopes: list[ast.AST] = [tree]

    def visit(node: ast.AST) -> tuple[ast.AST, list[ast.stmt], int] | None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
        try:
            for fname in ("body", "orelse", "finalbody"):
                stmts = getattr(node, fname, None)
                if not isinstance(stmts, list):
                    continue
                for i, stmt in enumerate(stmts):
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.value is call
                    ):
                        return scopes[-1], stmts, i
            for child in ast.iter_child_nodes(node):
                found = visit(child)
                if found is not None:
                    return found
            return None
        finally:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.pop()

    return visit(tree)


# -- verification ------------------------------------------------------------------


def _verify(
    module: ModuleInfo,
    new_source: str,
    fixed: list[Finding],
    original_keys: set[tuple[str, str, str]],
) -> bool:
    """The rewritten module parses, and R013-class fixes really fixed.

    Re-lints the rewritten source with R013: every fixed finding must be
    gone, and no finding may appear that the original module did not
    already have (a wrap that merely moves the leak is rejected).
    """
    try:
        tree = ast.parse(new_source, filename=str(module.path))
    except SyntaxError:
        return False
    fixed_keys = {
        (f.rule, f.context, f.message) for f in fixed if f.rule in ("R009", "R013")
    }
    if not fixed_keys:
        return True
    from .flowrules import R013ResourceLifetime

    info = ModuleInfo(
        name=module.name, path=module.path, relpath=module.relpath, tree=tree
    )
    mini = ProjectModel({module.name: info}, module.name.split(".")[0])
    mini._index_imports(info)
    after = {
        (f.rule, f.context, f.message)
        for f in R013ResourceLifetime().check(info, mini)
    }
    return not (after & fixed_keys) and after <= (original_keys - fixed_keys)
