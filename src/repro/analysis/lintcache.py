"""Incremental lint cache: content-addressed per-module findings.

A lint run is almost embarrassingly cacheable: every rule is a pure
function of (module source, cross-module facts, rule implementations,
configuration).  This module makes that explicit.  Each scanned module
gets a cache entry keyed by

* the **module digest** — SHA-256 of its source bytes;
* the **ruleset digest** — :data:`RULESET_VERSION` plus a hash of every
  source file in this package, so editing any rule (or the CFG/dataflow
  engine underneath) invalidates everything without manual bumps;
* the **config digest** — package name, scopes, allow-zones, and the
  ``--rule`` selection;
* the **project digest** — a hash of the cross-module facts rules
  consume (import graph, worker entry/initializer names, call-site
  contexts), derived from per-module *summaries* that are themselves
  cached by module digest.

The summary layer is what makes warm runs fast: when every module's
summary is cached, the project digest is computed without parsing a
single file, and when every findings entry hits too, the whole run is
hash-and-read.  A body-only edit re-parses and re-lints just the edited
module (its summary is unchanged, so the project digest — and therefore
every other module's findings key — survives).

Storage is one JSON file beside the engine's result cache
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bisect``).  The file is
rewritten atomically and pruned to the current tree on every save, so it
never grows beyond one entry per module.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..engine.cache import default_cache_dir
from ..obs.clock import monotonic_time
from .baseline import Baseline, apply_baseline
from .config import AnalysisConfig
from .escape import concurrency_sites
from .project import ModuleInfo, ProjectModel
from .rules import Finding, scoped_nodes
from .runner import (
    AnalysisResult,
    _module_findings,
    _selected_rules,
    default_baseline_path,
    relevant_stale,
)

__all__ = [
    "CacheStats",
    "LintCache",
    "RULESET_VERSION",
    "default_lint_cache_path",
    "run_cached_analysis",
]

#: Bumped on intentional rule-semantics changes that a source hash alone
#: would not capture (e.g. a data-file format change).  Routine rule
#: edits are caught by the package source digest.
RULESET_VERSION = 1


def default_lint_cache_path(root: Path | str) -> Path:
    """``<engine cache dir>/lint/cache-<root hash>.json``.

    One file per scanned root, beside the engine's result cache, so
    fixture-tree scans in tests never evict the real tree's entries.
    """
    digest = _sha256(str(Path(root).resolve()).encode())[:12]
    return default_cache_dir() / "lint" / f"cache-{digest}.json"


def _sha256(*parts: bytes) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()


def _ruleset_digest() -> str:
    """Hash of every analyzer source file plus :data:`RULESET_VERSION`."""
    pkg = Path(__file__).resolve().parent
    parts: list[bytes] = [str(RULESET_VERSION).encode()]
    for path in sorted(pkg.glob("*.py")):
        parts.append(path.name.encode())
        parts.append(path.read_bytes())
    return _sha256(*parts)


def _config_digest(config: AnalysisConfig) -> str:
    payload = {
        "package": config.package,
        "scopes": {k: list(v) for k, v in sorted(config.scopes.items())},
        "allow_zones": {k: list(v) for k, v in sorted(config.allow_zones.items())},
        "rules": sorted(config.rules) if config.rules is not None else None,
    }
    return _sha256(json.dumps(payload, sort_keys=True).encode())


def _module_summary(module: ModuleInfo) -> dict[str, Any]:
    """The cross-module facts one module contributes, from its AST alone.

    Everything a project-level rule reads about *other* modules must be
    here, or a change in module A could leave module B's cached findings
    stale: the import graph (R012 reachability), worker entry and pool
    initializer names, spawn presence, and which function names are
    called at module level vs. inside functions (R012's import-time-only
    registration exemption).
    """
    sites = concurrency_sites(module)
    toplevel_calls: set[str] = set()
    inner_calls: set[str] = set()
    for node, context, _ in scoped_nodes(module.tree):
        if not isinstance(node, ast.Call):
            continue
        ref = node.func
        name = ref.id if isinstance(ref, ast.Name) else (
            ref.attr if isinstance(ref, ast.Attribute) else None
        )
        if name is None:
            continue
        (toplevel_calls if context == "" else inner_calls).add(name)
    return {
        "name": module.name,
        "imports": sorted(module.internal_imports),
        "entries": sorted(sites.entry_names),
        "inits": sorted(sites.initializer_names),
        "spawns": bool(sites.spawn_calls),
        "toplevel_calls": sorted(toplevel_calls),
        "inner_calls": sorted(inner_calls),
    }


@dataclass
class CacheStats:
    """What one cached run did, for the CLI line and CI artifacts."""

    enabled: bool
    path: str
    modules: int = 0
    summary_hits: int = 0
    findings_hits: int = 0
    linted: int = 0  # modules that actually ran rules this time
    parsed: bool = False  # did we have to build the ProjectModel?
    elapsed_s: float = 0.0

    @property
    def warm(self) -> bool:
        return self.enabled and self.modules > 0 and self.linted == 0

    def to_json(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "path": self.path,
            "modules": self.modules,
            "summary_hits": self.summary_hits,
            "findings_hits": self.findings_hits,
            "linted": self.linted,
            "parsed": self.parsed,
            "warm": self.warm,
            "elapsed_s": round(self.elapsed_s, 4),
        }

    def describe(self) -> str:
        if not self.enabled:
            return f"lint cache: disabled ({self.elapsed_s:.2f}s)"
        state = "warm" if self.warm else (
            "cold" if self.findings_hits == 0 else "partial"
        )
        return (
            f"lint cache: {state} — {self.findings_hits}/{self.modules} modules "
            f"cached, {self.linted} linted ({self.elapsed_s:.2f}s)"
        )


class LintCache:
    """One JSON file mapping relpath -> {digest, summary, findings}."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._modules: dict[str, dict[str, Any]] = {}
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and isinstance(data.get("modules"), dict):
                self._modules = data["modules"]
        except (OSError, ValueError):
            pass  # missing or corrupt cache is just a cold start

    def _entry(self, relpath: str, digest: str) -> dict[str, Any] | None:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("digest") != digest:
            return None
        return entry

    def summary(self, relpath: str, digest: str) -> dict[str, Any] | None:
        entry = self._entry(relpath, digest)
        return entry.get("summary") if entry else None

    def findings(self, relpath: str, digest: str, key: str) -> list[dict] | None:
        entry = self._entry(relpath, digest)
        if entry is None:
            return None
        stored = entry.get("findings") or {}
        return stored.get(key)

    def put(
        self,
        relpath: str,
        digest: str,
        summary: dict[str, Any] | None = None,
        key: str | None = None,
        findings: list[dict] | None = None,
    ) -> None:
        entry = self._entry(relpath, digest)
        if entry is None:
            entry = {"digest": digest, "summary": None, "findings": {}}
            self._modules[relpath] = entry
        if summary is not None:
            entry["summary"] = summary
        if key is not None:
            # A handful of keys per module, LRU by insertion order, so
            # alternating --rule selections do not evict each other while
            # the file stays bounded.
            stored = entry.setdefault("findings", {})
            stored.pop(key, None)
            stored[key] = findings or []
            while len(stored) > 4:
                del stored[next(iter(stored))]

    def save(self, keep: set[str] | None = None) -> None:
        if keep is not None:
            self._modules = {
                rel: entry for rel, entry in self._modules.items() if rel in keep
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps({"version": RULESET_VERSION, "modules": self._modules}),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)


def run_cached_analysis(
    config: AnalysisConfig,
    baseline_path: Path | str | None = None,
    cache_path: Path | str | None = None,
    use_cache: bool = True,
) -> tuple[AnalysisResult, CacheStats]:
    """:func:`repro.analysis.runner.run_analysis` with the findings cache.

    Returns the same :class:`AnalysisResult` the uncached pipeline would
    (identical findings is a CI invariant), plus the cache statistics.
    """
    start = monotonic_time()
    if not use_cache:
        from .runner import run_analysis

        result = run_analysis(config, baseline_path)
        stats = CacheStats(
            enabled=False, path="", modules=result.modules_scanned,
            linted=result.modules_scanned, parsed=True,
            elapsed_s=monotonic_time() - start,
        )
        return result, stats

    path = (
        Path(cache_path)
        if cache_path is not None
        else default_lint_cache_path(config.root)
    )
    cache = LintCache(path)
    root = Path(config.root)
    digests = {
        p.relative_to(root).as_posix(): _sha256(p.read_bytes())
        for p in sorted(root.rglob("*.py"))
    }

    # Phase 1: per-module summaries (cached by source digest alone).  Any
    # miss forces one full parse; every summary is then refreshed from it.
    summaries: dict[str, dict[str, Any]] = {}
    project: ProjectModel | None = None
    for rel, digest in digests.items():
        cached = cache.summary(rel, digest)
        if cached is not None:
            summaries[rel] = cached
    summary_hits = len(summaries)
    if len(summaries) < len(digests):
        project = ProjectModel.scan(root, config.package)
        summaries = {}
        for module in project:
            summaries[module.relpath] = _module_summary(module)
            cache.put(
                module.relpath, digests[module.relpath],
                summary=summaries[module.relpath],
            )

    env_key = _sha256(
        _ruleset_digest().encode(),
        _config_digest(config).encode(),
        json.dumps(summaries, sort_keys=True).encode(),
    )

    # Phase 2: per-module findings, keyed by module digest + env.
    findings: list[Finding] = []
    missed: list[str] = []
    for rel, digest in digests.items():
        stored = cache.findings(rel, digest, env_key)
        if stored is None:
            missed.append(rel)
        else:
            findings.extend(Finding(**f) for f in stored)
    findings_hits = len(digests) - len(missed)

    if missed:
        if project is None:
            project = ProjectModel.scan(root, config.package)
        rules = _selected_rules(config)
        missing = set(missed)
        for module in project:
            if module.relpath not in missing:
                continue
            fresh = _module_findings(config, module, project, rules)
            cache.put(
                module.relpath, digests[module.relpath],
                key=env_key, findings=[f.to_json() for f in fresh],
            )
            findings.extend(fresh)

    cache.save(keep=set(digests))
    findings.sort()

    baseline = Baseline.load(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    unsuppressed, suppressed, stale = apply_baseline(findings, baseline)
    stale = relevant_stale(stale, config)
    result = AnalysisResult(
        findings=unsuppressed,
        suppressed=suppressed,
        stale=stale,
        baseline_problems=baseline.problems(),
        baseline=baseline,
        rules=_selected_rules(config),
        modules_scanned=len(digests),
    )
    stats = CacheStats(
        enabled=True,
        path=str(path),
        modules=len(digests),
        summary_hits=summary_hits,
        findings_hits=findings_hits,
        linted=len(missed),
        parsed=project is not None,
        elapsed_s=monotonic_time() - start,
    )
    return result, stats
