"""Rule engine core: findings, the rule base class, and AST walk helpers.

A rule is a stateless object with an ``id`` (``R00x``), a severity, and a
``check`` method that yields :class:`Finding` objects for one module.
The runner handles scoping and allow-zones (:mod:`repro.analysis.config`),
so ``check`` only ever sees modules the rule should scan.

Findings carry a ``context`` — the dotted path of the enclosing
class/function — and are matched against the baseline by
``(rule, path, context)``, which survives line-number drift from
unrelated edits (the failure mode that makes line-keyed baselines rot).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from .project import ModuleInfo, ProjectModel

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "scoped_nodes",
    "set_valued_names",
]


class Severity:
    """Finding severities, ordered; map 1:1 onto SARIF levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"
    ORDER = (ERROR, WARNING, NOTE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # package-relative posix path
    line: int
    col: int
    rule: str = field(compare=False)
    severity: str = field(compare=False)
    message: str = field(compare=False)
    #: Dotted enclosing scope ("" at module level), e.g. "Graph.add_edge".
    context: str = field(compare=False, default="")

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.context)

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "message": self.message,
        }


class Rule:
    """Base class; subclasses set the class attributes and implement check."""

    id: str = ""
    name: str = ""
    severity: str = Severity.ERROR
    description: str = ""

    def check(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str, context: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=context,
        )


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


def scoped_nodes(tree: ast.Module) -> Iterator[tuple[ast.AST, str, int]]:
    """Yield ``(node, context, loop_depth)`` for every node in ``tree``.

    ``context`` is the dotted enclosing class/function path ("" at module
    level); ``loop_depth`` counts *lexically* enclosing ``for``/``while``
    statements, resetting inside nested function definitions (a closure's
    body does not execute once per iteration of the loop that defines it).
    """

    def visit(node: ast.AST, context: str, depth: int) -> Iterator[tuple[ast.AST, str, int]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                inner = f"{context}.{child.name}" if context else child.name
                yield child, context, depth
                yield from visit(
                    child, inner, 0 if not isinstance(child, ast.ClassDef) else depth
                )
            elif isinstance(child, _LOOP_NODES):
                yield child, context, depth
                # A for-loop's iterable evaluates once (old depth); a
                # while-loop's test re-evaluates every iteration, and the
                # body of either (plus else, conservatively) is depth + 1.
                if isinstance(child, ast.While):
                    headers: list[tuple[ast.AST, int]] = [(child.test, depth + 1)]
                else:
                    headers = [(child.target, depth), (child.iter, depth)]
                for header, header_depth in headers:
                    yield header, context, header_depth
                    yield from visit(header, context, header_depth)
                for stmt in child.body + child.orelse:
                    yield stmt, context, depth + 1
                    yield from visit(stmt, context, depth + 1)
            else:
                yield child, context, depth
                yield from visit(child, context, depth)

    yield from visit(tree, "", 0)


_SET_CALLS = {"set", "frozenset"}


def set_valued_names(func: ast.AST) -> set[str]:
    """Local names bound (anywhere in ``func``) to an obvious set value.

    Tracks ``x = {...}``, ``x = set(...)``/``frozenset(...)``, set
    comprehensions, and ``x = d.keys()``.  Purely lexical — a name
    rebound to a list later is still reported, which is the conservative
    direction for a determinism lint.
    """
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_CALLS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
    return False
