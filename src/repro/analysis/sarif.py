"""SARIF 2.1.0 emission for analysis findings.

One run, one tool (``repro-analysis``), one result per finding.
Suppressed (baselined) findings are included with a ``suppressions``
entry of kind ``external`` carrying the baseline justification, which is
how SARIF consumers (GitHub code scanning included) expect accepted
findings to be represented.  Paths are emitted relative to the scanned
package root under the ``SRCROOT`` uri base.
"""

from __future__ import annotations

from typing import Any, Iterable

from .rules import Finding, Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _result(
    finding: Finding,
    rule_index: dict[str, int],
    justification: str | None,
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "repro/v1": "/".join(finding.key()),
        },
    }
    if justification is not None:
        result["suppressions"] = [
            {"kind": "external", "justification": justification}
        ]
    return result


def to_sarif(
    unsuppressed: Iterable[Finding],
    suppressed: Iterable[tuple[Finding, str]] = (),
    rules: Iterable[Rule] = (),
    tool_version: str = "1.0.0",
) -> dict[str, Any]:
    """The full SARIF 2.1.0 log document as a plain dict."""
    rule_list = sorted(rules, key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(rule_list)}
    results = [_result(f, rule_index, None) for f in unsuppressed]
    results += [_result(f, rule_index, why) for f, why in suppressed]
    results.sort(key=lambda r: (r["ruleId"], r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"], r["locations"][0]["physicalLocation"]["region"]["startLine"]))
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro/docs/static-analysis.md",
                        "version": tool_version,
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.description},
                                "defaultConfiguration": {
                                    "level": _LEVELS.get(rule.severity, "warning")
                                },
                            }
                            for rule in rule_list
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
