"""The repo's invariant ruleset, R001-R010.

Each rule encodes one contract the dynamic test suites already enforce
at run time; the linter proves the violating code was never written.
See ``docs/static-analysis.md`` for the catalog with rationale.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .flowrules import FLOW_RULES, RULE_ALIASES
from .project import ModuleInfo, ProjectModel, qualified_call_name, self_method_calls
from .rules import Finding, Rule, Severity, scoped_nodes, set_valued_names

__all__ = ["ALL_RULES", "RULE_ALIASES", "default_rules"]


# Module-level functions of `random` that draw from the hidden shared
# instance (random.Random is fine: it *is* the seeded-instance API).
_RANDOM_SHARED_FUNCS = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices", "expovariate",
        "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint", "random",
        "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
        "uniform", "vonmisesvariate", "weibullvariate",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns", "time.localtime", "time.gmtime", "time.ctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

# repro.obs factories whose *use inside a loop* breaks the flush-once
# contract; matched through import aliases, so `from ..obs import counter`
# and `from repro.obs.metrics import counter` both resolve.
_OBS_FACTORIES = frozenset({"counter", "gauge", "histogram", "span"})
_OBS_MODULES = ("repro.obs",)
_METRIC_METHODS = frozenset({"inc", "dec", "observe", "observe_many"})


def _is_obs_origin(origin: str | None) -> bool:
    return origin is not None and any(
        origin == f"{mod}.{fn}" or origin.startswith(f"{mod}.") and origin.endswith(f".{fn}")
        for mod in _OBS_MODULES
        for fn in _OBS_FACTORIES
    )


class R001NoSharedRandom(Rule):
    id = "R001"
    name = "no-shared-random"
    severity = Severity.ERROR
    description = (
        "Calls to `random` module-level functions draw from the hidden "
        "process-wide instance; all randomness must flow through seeded "
        "Random/repro.rng objects."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, _ in scoped_nodes(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name in _RANDOM_SHARED_FUNCS:
                        yield self.finding(
                            module, node,
                            f"`from random import {alias.name}` binds a "
                            "shared-instance function; use a seeded Random",
                            context,
                        )
            elif isinstance(node, ast.Call):
                origin = qualified_call_name(node.func, module.aliases)
                if origin and origin.startswith("random."):
                    func = origin[len("random."):]
                    if func in _RANDOM_SHARED_FUNCS:
                        yield self.finding(
                            module, node,
                            f"call to shared-instance `random.{func}()`; "
                            "use a seeded Random/repro.rng instance",
                            context,
                        )


class R002NoWallClock(Rule):
    id = "R002"
    name = "no-wall-clock"
    severity = Severity.ERROR
    description = (
        "Wall-clock reads outside the observability layer make runs "
        "time-dependent; go through repro.obs.clock."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, _ in scoped_nodes(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = qualified_call_name(node.func, module.aliases)
            if origin in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock call `{origin}()`; use repro.obs.clock "
                    "(monotonic_time/wall_time)",
                    context,
                )


class R003MutatorsInvalidateDerived(Rule):
    id = "R003"
    name = "mutators-invalidate-derived"
    severity = Severity.ERROR
    description = (
        "Any method of a `_derived`-caching class that mutates instance "
        "state must invalidate `_derived` (directly or via a method that "
        "does), or the CSR/fingerprint caches go stale."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, _ in scoped_nodes(module.tree):
            if isinstance(node, ast.ClassDef) and self._owns_derived(node):
                yield from self._check_class(module, node, context)

    @staticmethod
    def _owns_derived(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "_derived"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef, outer: str
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        touches = {name: _touches_derived(fn) for name, fn in methods.items()}
        calls = {name: self_method_calls(fn) & set(methods) for name, fn in methods.items()}
        # Transitive closure: a method invalidates if it touches _derived
        # or calls (possibly through other methods) one that does.
        invalidates = {name for name, t in touches.items() if t}
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name not in invalidates and calls[name] & invalidates:
                    invalidates.add(name)
                    changed = True
        for name, fn in sorted(methods.items()):
            if name in invalidates:
                continue
            site = _first_self_mutation(fn)
            if site is not None:
                yield self.finding(
                    module, site,
                    f"`{cls.name}.{name}` mutates instance state without "
                    "invalidating `_derived`",
                    f"{outer}.{cls.name}.{name}" if outer else f"{cls.name}.{name}",
                )


_CONTAINER_MUTATORS = frozenset(
    {"add", "append", "clear", "discard", "extend", "insert", "pop",
     "popitem", "remove", "setdefault", "update"}
)


def _self_attr(node: ast.expr) -> str | None:
    """The `<attr>` of a `self.<attr>` base, looking through subscripts."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _touches_derived(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "_derived"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _first_self_mutation(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.AST | None:
    """First statement mutating `self.<attr>` state (attr != _derived)."""
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Delete) else [node.target]
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CONTAINER_MUTATORS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None and attr != "_derived":
                return node
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr != "_derived":
                return node
    return None


class R004NoObsInHotLoops(Rule):
    id = "R004"
    name = "no-obs-in-hot-loops"
    severity = Severity.WARNING
    description = (
        "Metric/trace calls lexically inside loops in kernel modules "
        "violate the flush-local-ints-once-per-run contract."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        metric_locals = _metric_bound_names(module)
        for node, context, depth in scoped_nodes(module.tree):
            if depth == 0 or not isinstance(node, ast.Call):
                continue
            origin = qualified_call_name(node.func, module.aliases)
            if _is_obs_origin(origin):
                short = origin.rpartition(".")[2]
                yield self.finding(
                    module, node,
                    f"obs call `{short}(...)` inside a loop; acquire metrics "
                    "once per run and flush local accumulators after the loop",
                    context,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in metric_locals
            ):
                yield self.finding(
                    module, node,
                    f"metric method `.{node.func.attr}()` on "
                    f"`{node.func.value.id}` inside a loop; flush once after "
                    "the loop instead",
                    context,
                )


def _metric_bound_names(module: ModuleInfo) -> set[str]:
    """Names assigned from an obs factory call anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            origin = qualified_call_name(node.value.func, module.aliases)
            if _is_obs_origin(origin):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


class R005NoUnorderedSetIteration(Rule):
    id = "R005"
    name = "no-unordered-set-iteration"
    severity = Severity.ERROR
    description = (
        "Iterating a bare set in a seeded code path makes decisions depend "
        "on hash-table layout; wrap the iterable in sorted(...)."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        # Collect per-function set-valued locals (module-level too).
        scopes: dict[str, set[str]] = {"": set_valued_names(module.tree)}
        for node, context, _ in scoped_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{context}.{node.name}" if context else node.name
                scopes[inner] = set_valued_names(node)
        for node, context, _ in scoped_nodes(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if self._is_unordered(it, scopes.get(context, scopes[""])):
                    yield self.finding(
                        module, it,
                        "iteration over an unordered set feeds seeded "
                        "decisions; use sorted(...) or an insertion-ordered "
                        "dict",
                        context,
                    )

    @staticmethod
    def _is_unordered(node: ast.expr, local_sets: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                # dict.keys() views iterate in insertion order, but a keys()
                # view of a set-derived dict is a smell the rule names
                # explicitly; only flag when the receiver is a known set.
                return (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id in local_sets
                )
            return False
        return isinstance(node, ast.Name) and node.id in local_sets


class R006NoFloatEqualityInGains(Rule):
    id = "R006"
    name = "no-float-equality-in-gains"
    severity = Severity.WARNING
    description = (
        "== / != against float values in gain/score arithmetic is "
        "representation-dependent; compare with a tolerance or restructure."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, _ in scoped_nodes(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_contains_float_constant(expr) for expr in operands):
                yield self.finding(
                    module, node,
                    "float equality comparison; use an explicit tolerance "
                    "or integer arithmetic",
                    context,
                )


def _contains_float_constant(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
    return False


class R007NoSwallowedExceptions(Rule):
    id = "R007"
    name = "no-swallowed-exceptions"
    severity = Severity.WARNING
    description = (
        "Bare `except:` and pass-only handlers hide engine failures; "
        "handle, log, or re-raise."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, _ in scoped_nodes(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions",
                    context,
                )
            elif all(_is_noop_stmt(stmt) for stmt in node.body):
                yield self.finding(
                    module, node,
                    "exception handler swallows the error (pass-only body)",
                    context,
                )


def _is_noop_stmt(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


class R008PayloadRoundTrip(Rule):
    id = "R008"
    name = "payload-round-trip"
    severity = Severity.ERROR
    description = (
        "A result serializer and its deserializer must agree on payload "
        "keys, or cached/ledgered results fail to round-trip."
    )

    _BASES = ("payload", "dict", "json", "record")

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        pairs: dict[tuple[str, str], dict[str, ast.AST]] = {}
        for node, context, _ in scoped_nodes(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stripped = node.name.lstrip("_")
            for direction in ("to", "from"):
                prefix = direction + "_"
                if stripped.startswith(prefix) and stripped[len(prefix):] in self._BASES:
                    pairs.setdefault((context, stripped[len(prefix):]), {})[direction] = node
        for (context, base), pair in sorted(pairs.items()):
            if "to" not in pair or "from" not in pair:
                continue
            written = _written_keys(pair["to"])
            read = _read_keys(pair["from"])
            if written is None or read is None:
                continue  # dynamic keys: out of this rule's reach
            for key in sorted(written - read):
                yield self.finding(
                    module, pair["from"],
                    f"payload key {key!r} is written by to_{base} but never "
                    f"read by from_{base}",
                    context,
                )
            for key in sorted(read - written):
                yield self.finding(
                    module, pair["to"],
                    f"payload key {key!r} is read by from_{base} but never "
                    f"written by to_{base}",
                    context,
                )


def _written_keys(func: ast.AST) -> set[str] | None:
    """String keys the serializer emits (dict literals + subscript stores)."""
    keys: set[str] = set()
    saw_dynamic = False
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                elif key is not None:
                    saw_dynamic = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    sl = target.slice
                    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                        keys.add(sl.value)
                    else:
                        saw_dynamic = True
    if saw_dynamic and not keys:
        return None
    return keys


def _read_keys(func: ast.AST) -> set[str] | None:
    """String keys the deserializer consumes (subscript loads + .get)."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys or None


# R009 (shm-unlink-discipline) was a module-granular syntactic matcher;
# it is now an alias for the CFG-based lifetime rule R013, which reports
# shm findings under the R009 id (see flowrules.RULE_ALIASES).


# R010: the observability naming contract.  Metric names are Prometheus
# snake_case; the suffix encodes the metric's semantics (`_total` marks a
# monotonic counter, `_seconds`/`_bytes`/`_ratio` mark a histogram's unit).
# Span names are dotted lowercase paths (`kl.pass`, `engine.batch`).
_SNAKE_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$")
_SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)*$")
_HISTOGRAM_UNIT_SUFFIXES = ("_seconds", "_bytes", "_ratio")
_METRIC_FACTORY_ATTRS = frozenset({"counter", "gauge", "histogram", "span"})


class R010MetricNamingContract(Rule):
    id = "R010"
    name = "metric-naming-contract"
    severity = Severity.ERROR
    description = (
        "Metric/span names must follow the naming contract (snake_case; "
        "counters end in `_total`, histograms in a unit suffix, spans are "
        "dotted lowercase), and histogram bucket sequences must be declared "
        "outside hot loops."
    )

    def check(self, module: ModuleInfo, project: ProjectModel) -> Iterator[Finding]:
        for node, context, depth in scoped_nodes(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._factory_kind(node, module)
            if kind is None:
                continue
            name = self._literal_name(node)
            if name is not None:
                problem = self._name_problem(kind, name)
                if problem is not None:
                    yield self.finding(
                        module, node,
                        f"{kind} name {name!r} {problem}",
                        context,
                    )
            if kind == "histogram" and depth > 0:
                buckets = self._buckets_arg(node)
                if buckets is not None and self._is_inline_sequence(buckets):
                    yield self.finding(
                        module, node,
                        "histogram bucket sequence built inside a loop; "
                        "declare the buckets tuple once at module scope",
                        context,
                    )

    @staticmethod
    def _factory_kind(node: ast.Call, module: ModuleInfo) -> str | None:
        """"counter"/"gauge"/"histogram"/"span" when this call creates one."""
        origin = qualified_call_name(node.func, module.aliases)
        if _is_obs_origin(origin):
            return origin.rpartition(".")[2]
        # Registry-method form: REGISTRY.counter(...), registry.histogram(...)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_FACTORY_ATTRS
            and node.func.attr != "span"
        ):
            return node.func.attr
        return None

    @staticmethod
    def _literal_name(node: ast.Call) -> str | None:
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                return value
        return None

    @staticmethod
    def _name_problem(kind: str, name: str) -> str | None:
        if kind == "span":
            if not _SPAN_NAME_RE.match(name):
                return "is not a dotted lowercase path (e.g. `kl.pass`)"
            return None
        if not _SNAKE_NAME_RE.match(name):
            return "is not snake_case"
        if kind == "counter" and not name.endswith("_total"):
            return "is a counter and must end in `_total`"
        if kind == "gauge" and name.endswith("_total"):
            return "is a gauge and must not end in `_total` (counter suffix)"
        if kind == "histogram" and not name.endswith(_HISTOGRAM_UNIT_SUFFIXES):
            suffixes = "/".join(_HISTOGRAM_UNIT_SUFFIXES)
            return f"is a histogram and must end in a unit suffix ({suffixes})"
        return None

    @staticmethod
    def _buckets_arg(node: ast.Call) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == "buckets":
                return kw.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    @staticmethod
    def _is_inline_sequence(node: ast.expr) -> bool:
        return isinstance(
            node, (ast.List, ast.Tuple, ast.ListComp, ast.GeneratorExp)
        )


ALL_RULES: tuple[type[Rule], ...] = (
    R001NoSharedRandom,
    R002NoWallClock,
    R003MutatorsInvalidateDerived,
    R004NoObsInHotLoops,
    R005NoUnorderedSetIteration,
    R006NoFloatEqualityInGains,
    R007NoSwallowedExceptions,
    R008PayloadRoundTrip,
    R010MetricNamingContract,
    *FLOW_RULES,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [cls() for cls in ALL_RULES]
