"""Escape analysis: what crosses thread, process, and module boundaries.

Three questions the concurrency rules need answered per module:

* **Which functions are concurrency entry points?**  Names passed as
  ``target=``/``initializer=`` to ``Thread``/``Process``/pool factories,
  or submitted via ``pool.submit``/``map``/``apply_async`` — the code
  that runs on another thread or in a worker process.
* **Which module-level names are mutable state?**  Bindings whose value
  is an obviously-mutable container (literal, comprehension, or a
  ``dict``/``list``/``set``/``deque``/``defaultdict``/``Counter`` call).
* **Which functions mutate those names at run time?**  ``global``
  rebinds, subscript stores, and mutator-method calls on module-level
  names — the writes that diverge between a forked worker (inherits the
  parent's state) and a spawned one (re-imports fresh), breaking the
  start-method invariance the engine guarantees.

Everything is per-module and purely syntactic over the parsed AST; the
R012 rule combines these with the project import graph to limit itself
to modules actually reachable from worker entry points.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .project import ModuleInfo, qualified_call_name
from .rules import scoped_nodes

__all__ = [
    "ConcurrencySites",
    "concurrency_sites",
    "module_level_calls",
    "mutable_globals",
    "global_mutations",
]

#: Call origins that take a ``target=``/``initializer=`` entry point.
_SPAWNER_SUFFIXES = (
    ".Thread", ".Process", ".Timer", ".ProcessPoolExecutor", ".ThreadPoolExecutor",
    ".Pool",
)
#: Method names that submit a callable (first argument) to a pool.
_SUBMIT_METHODS = frozenset({"submit", "map", "imap", "imap_unordered",
                             "apply_async", "map_async", "starmap"})
#: Mutating container methods (shared with R003's notion of mutation).
_MUTATOR_METHODS = frozenset(
    {"add", "append", "appendleft", "clear", "discard", "extend",
     "extendleft", "insert", "pop", "popleft", "popitem", "remove",
     "setdefault", "update"}
)
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict",
     "bytearray"}
)


@dataclass
class ConcurrencySites:
    """Concurrency boundaries of one module."""

    #: Local names of functions passed as thread/process/pool entry
    #: points, with the context they were referenced from.
    entry_names: set[str] = field(default_factory=set)
    #: Local names of functions passed as pool ``initializer=`` —
    #: they run once per worker before any job, so the state they
    #: (re)set is per-process by construction.
    initializer_names: set[str] = field(default_factory=set)
    #: ``(call_node, context)`` of every spawner/submit call site.
    spawn_calls: list[tuple[ast.Call, str]] = field(default_factory=list)


def _callable_name(expr: ast.expr) -> str | None:
    """The local name a callable argument refers to (``f``, ``self.f``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        # ``self._worker_loop`` / ``mod.func`` — track the attr name; the
        # caller matches it against locally-defined functions/methods.
        return expr.attr
    return None


def concurrency_sites(module: ModuleInfo) -> ConcurrencySites:
    """Thread/process/pool entry points referenced in ``module``."""
    sites = ConcurrencySites()
    for node, context, _ in scoped_nodes(module.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = qualified_call_name(node.func, module.aliases)
        is_spawner = origin is not None and origin.endswith(_SPAWNER_SUFFIXES)
        if is_spawner:
            sites.spawn_calls.append((node, context))
            for kw in node.keywords:
                name = _callable_name(kw.value) if kw.value is not None else None
                if name is None:
                    continue
                if kw.arg == "target":
                    sites.entry_names.add(name)
                elif kw.arg == "initializer":
                    sites.initializer_names.add(name)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and node.args
        ):
            name = _callable_name(node.args[0])
            if name is not None:
                sites.spawn_calls.append((node, context))
                sites.entry_names.add(name)
    return sites


def _is_mutable_value(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _MUTABLE_CTORS
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return expr.func.attr in _MUTABLE_CTORS
    return False


def mutable_globals(module: ModuleInfo) -> dict[str, ast.stmt]:
    """Module-level names bound to obviously-mutable containers."""
    out: dict[str, ast.stmt] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt
    return out


def global_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, global_names: set[str]
) -> Iterator[tuple[str, ast.AST]]:
    """``(name, site)`` for each mutation of a module-level name in ``func``.

    Covers ``global x; x = ...`` rebinds, ``x[k] = v`` subscript stores,
    ``del x[k]``, and ``x.append(...)``-style mutator calls — but only
    for names that are *not* shadowed by a local binding or parameter.
    """
    declared_global: set[str] = set()
    local: set[str] = set()
    args = func.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        local.add(a.arg)
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            continue
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _mutation_target(target, global_names, declared_global, local)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            yield from _mutation_target(node.target, global_names, declared_global, local)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                yield from _mutation_target(target, global_names, declared_global, local)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            if name in global_names and name not in local:
                yield name, node


def _mutation_target(
    target: ast.expr,
    global_names: set[str],
    declared_global: set[str],
    local: set[str],
) -> Iterator[tuple[str, ast.AST]]:
    if isinstance(target, ast.Name):
        # A bare rebind only touches the module when declared global.
        if target.id in global_names and target.id in declared_global:
            yield target.id, target
    elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
        name = target.value.id
        if name in global_names and name not in local:
            yield name, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _mutation_target(elt, global_names, declared_global, local)


def module_level_calls(module: ModuleInfo, func_name: str) -> bool:
    """True when every call of ``func_name`` in this module is import-time.

    Registration helpers (``register_algorithm(...)`` loops, decorator
    application) mutate module state only while the module body executes —
    which happens identically in forked and spawned workers — so their
    writes are fork/spawn-consistent by construction.
    """
    any_call = False
    for node, context, _ in scoped_nodes(module.tree):
        if isinstance(node, ast.Call):
            ref = node.func
            name = ref.id if isinstance(ref, ast.Name) else (
                ref.attr if isinstance(ref, ast.Attribute) else None
            )
            if name == func_name:
                any_call = True
                if context != "":
                    return False
    return any_call
