"""Project model: parsed modules, import graph, and a call-graph sketch.

:class:`ProjectModel` walks a package directory once, parses every
``*.py`` file with :mod:`ast`, and derives the two structures the rules
share:

* an **import graph** — for each module, the set of *project-internal*
  modules it imports (relative imports resolved against the package
  root) plus the set of external top-level modules, so rules can ask
  "who imports ``random``?" without re-walking ASTs;
* a **call-graph approximation** — per class, which of its own methods
  each method calls (``self.f()`` edges only).  This is deliberately
  lightweight: it answers the one question the invariant rules need
  ("does this mutator reach an invalidation, possibly indirectly?")
  without attempting general points-to analysis.

Everything here is pure stdlib and side-effect free; modules are parsed,
never imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["ModuleInfo", "ProjectModel", "qualified_call_name", "self_method_calls"]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.partition.kl"
    path: Path  # absolute path on disk
    relpath: str  # path relative to the package root, "/"-separated
    tree: ast.Module
    #: Local alias -> dotted origin, e.g. {"pc": "time.perf_counter",
    #: "np": "numpy", "random": "random"}.  Covers both ``import x [as y]``
    #: and ``from x import y [as z]`` (relative imports resolved).
    aliases: dict[str, str] = field(default_factory=dict)
    #: Project-internal modules this module imports (dotted names).
    internal_imports: set[str] = field(default_factory=set)
    #: External top-level module names this module imports.
    external_imports: set[str] = field(default_factory=set)


def _resolve_relative(module: str | None, level: int, importer: str) -> str:
    """Absolute dotted target of ``from <...module> import ...`` in ``importer``."""
    if level == 0:
        return module or ""
    # importer "repro.partition.kl" at level 1 -> base "repro.partition".
    base_parts = importer.split(".")[:-level]
    if module:
        base_parts.append(module)
    return ".".join(base_parts)


def qualified_call_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted origin of a call target, resolved through import aliases.

    ``pc()`` with ``from time import perf_counter as pc`` resolves to
    ``"time.perf_counter"``; ``random.shuffle`` with ``import random`` to
    ``"random.shuffle"``.  Returns ``None`` for anything that does not
    bottom out in an imported name (locals, attribute chains on calls).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def self_method_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names of same-class methods called as ``self.<name>(...)`` in ``func``."""
    called: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            called.add(node.func.attr)
    return called


class ProjectModel:
    """All modules of one package, parsed, with the derived graphs."""

    def __init__(self, modules: dict[str, ModuleInfo], package: str) -> None:
        self.modules = modules
        self.package = package

    @classmethod
    def scan(cls, root: Path, package: str = "repro") -> "ProjectModel":
        """Parse every ``*.py`` under ``root`` (the directory *of* ``package``)."""
        root = Path(root)
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            dotted = rel[: -len(".py")].replace("/", ".")
            if dotted.endswith("__init__"):
                dotted = dotted[: -len(".__init__")] or ""
            name = f"{package}.{dotted}" if dotted else package
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            modules[name] = ModuleInfo(name=name, path=path, relpath=rel, tree=tree)
        model = cls(modules, package)
        for info in modules.values():
            model._index_imports(info)
        return model

    def _index_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds `a.b`.
                    info.aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
                    self._record_target(info, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(node.module, node.level, info.name)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{target}.{alias.name}" if target else alias.name
                    info.aliases[local] = dotted
                    # `from . import c` names the module pkg.sub.c, not an
                    # attribute of pkg.sub — record the most precise target.
                    self._record_target(info, dotted if dotted in self.modules else target)

    def _record_target(self, info: ModuleInfo, target: str) -> None:
        if not target:
            return
        if target == self.package or target.startswith(self.package + "."):
            # `from .x import f` may name either a module or an attribute of
            # one; record the longest prefix that is a real project module.
            name = target
            while name and name not in self.modules:
                name = name.rpartition(".")[0]
            info.internal_imports.add(name or target)
        else:
            info.external_imports.add(target.split(".")[0])

    # -- queries ------------------------------------------------------------------

    def import_graph(self) -> dict[str, set[str]]:
        """Module -> set of project-internal modules it imports."""
        return {name: set(info.internal_imports) for name, info in self.modules.items()}

    def importers_of(self, external: str) -> list[ModuleInfo]:
        """Modules importing the external top-level module ``external``."""
        return [
            info
            for _, info in sorted(self.modules.items())
            if external in info.external_imports
        ]

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules[name] for name in sorted(self.modules))
