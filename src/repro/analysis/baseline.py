"""Baseline suppression: accepted legacy findings, with justifications.

The baseline file is a checked-in JSON document listing findings the
project has explicitly accepted.  Entries match findings by
``(rule, path, context)`` — never by line number, so unrelated edits
above a finding do not invalidate the baseline — and every entry must
carry a human-written ``justification``; the ``--check`` gate rejects
missing or placeholder (``TODO``) justifications as loudly as it rejects
new findings.

Stale entries (suppressing nothing) also fail ``--check``: a baseline
that outlives its findings stops meaning anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .rules import Finding

__all__ = ["Baseline", "BaselineEntry", "apply_baseline", "update_baseline"]

_PLACEHOLDER = "TODO"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def problem(self) -> str | None:
        """Why this entry is unacceptable, or None."""
        text = self.justification.strip()
        if not text:
            return "missing justification"
        if text.upper().startswith(_PLACEHOLDER):
            return "placeholder justification"
        return None


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != 1:
            raise ValueError(f"unsupported baseline version in {path}: {data.get('version')!r}")
        entries = [
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                context=raw.get("context", ""),
                justification=raw.get("justification", ""),
            )
            for raw in data.get("suppressions", [])
        ]
        return cls(entries)

    def save(self, path: Path | str) -> None:
        payload = {
            "version": 1,
            "suppressions": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "context": e.context,
                    "justification": e.justification,
                }
                for e in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def problems(self) -> list[tuple[BaselineEntry, str]]:
        out = []
        for entry in self.entries:
            problem = entry.problem()
            if problem:
                out.append((entry, problem))
        return out


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into (unsuppressed, suppressed) and report stale entries."""
    by_key = {entry.key(): entry for entry in baseline.entries}
    unsuppressed: list[Finding] = []
    suppressed: list[Finding] = []
    matched: set[tuple[str, str, str]] = set()
    for finding in findings:
        entry = by_key.get(finding.key())
        if entry is None:
            unsuppressed.append(finding)
        else:
            suppressed.append(finding)
            matched.add(entry.key())
    stale = [entry for entry in baseline.entries if entry.key() not in matched]
    return unsuppressed, suppressed, stale


def update_baseline(
    findings: list[Finding], baseline: Baseline
) -> Baseline:
    """New baseline covering exactly the current findings.

    Existing justifications are preserved; genuinely new findings get a
    ``TODO`` placeholder that ``--check`` will refuse until a human
    replaces it — updating the baseline records a debt, it does not pay it.
    """
    existing = {entry.key(): entry for entry in baseline.entries}
    entries: dict[tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        key = finding.key()
        kept = existing.get(key)
        entries[key] = kept if kept is not None else BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            context=finding.context,
            justification=f"{_PLACEHOLDER}: justify or fix",
        )
    return Baseline(sorted(entries.values(), key=BaselineEntry.key))
