"""Text and JSON rendering of analysis results."""

from __future__ import annotations

import json
from typing import Any

from .baseline import BaselineEntry
from .rules import Finding, Severity

__all__ = ["render_json", "render_text"]


def render_text(
    unsuppressed: list[Finding],
    suppressed: list[Finding],
    stale: list[BaselineEntry],
    baseline_problems: list[tuple[BaselineEntry, str]],
    modules_scanned: int,
) -> str:
    """Compiler-style one-line-per-finding report plus a summary line."""
    lines: list[str] = []
    severity_rank = {s: i for i, s in enumerate(Severity.ORDER)}
    for f in sorted(unsuppressed, key=lambda f: (severity_rank[f.severity], f)):
        where = f"{f.path}:{f.line}:{f.col + 1}"
        ctx = f" [{f.context}]" if f.context else ""
        lines.append(f"{where}: {f.severity} {f.rule} ({f.message}){ctx}")
    for entry, problem in baseline_problems:
        lines.append(
            f"baseline: {problem}: {entry.rule} {entry.path} [{entry.context}]"
        )
    for entry in stale:
        lines.append(
            f"baseline: stale entry (no matching finding): "
            f"{entry.rule} {entry.path} [{entry.context}]"
        )
    summary = (
        f"{modules_scanned} modules scanned: "
        f"{len(unsuppressed)} finding{'s' if len(unsuppressed) != 1 else ''}"
    )
    if suppressed:
        summary += f", {len(suppressed)} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    if baseline_problems:
        summary += f", {len(baseline_problems)} baseline problem{'s' if len(baseline_problems) != 1 else ''}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    unsuppressed: list[Finding],
    suppressed: list[Finding],
    stale: list[BaselineEntry],
    baseline_problems: list[tuple[BaselineEntry, str]],
    modules_scanned: int,
) -> str:
    payload: dict[str, Any] = {
        "modules_scanned": modules_scanned,
        "findings": [f.to_json() for f in sorted(unsuppressed)],
        "suppressed": [f.to_json() for f in sorted(suppressed)],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "context": e.context} for e in stale
        ],
        "baseline_problems": [
            {"rule": e.rule, "path": e.path, "context": e.context, "problem": p}
            for e, p in baseline_problems
        ],
    }
    return json.dumps(payload, indent=2)
