"""Analysis configuration: which files each rule scans or skips.

Every rule sees every module by default.  Two per-rule path maps narrow
that:

* **scopes** restrict a rule to part of the tree (R006's float-equality
  check only makes sense in gain arithmetic, so it scans ``partition/``
  and nothing else);
* **allow zones** carve sanctioned exceptions out of a rule's scope
  (R002 bans wall-clock reads everywhere *except* ``obs/`` — the clock
  choke point — and bench code).

Both maps use paths relative to the scanned package root, ``/``-separated
on every platform.  An entry ending in ``/`` matches the whole subtree;
an entry containing a glob character is an :mod:`fnmatch` pattern; any
other entry matches one file exactly.

Tests point ``root`` at fixture packages and swap in their own maps, so
rule behavior is exercised without touching the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Mapping

__all__ = ["AnalysisConfig", "DEFAULT_ALLOW_ZONES", "DEFAULT_SCOPES", "default_config"]


#: Sanctioned exceptions per rule (paths relative to the package root).
DEFAULT_ALLOW_ZONES: Mapping[str, tuple[str, ...]] = {
    # All randomness flows through the seeded generator implementations.
    "R001": ("rng.py",),
    # The observability layer owns the clock (obs/clock.py is the choke
    # point); bench code measures wall time by definition.
    "R002": ("obs/", "bench/"),
    # The obs metric registry is process-local by design: workers ship
    # deltas back to the coordinator (obs/shipper.py), so module-level
    # registry state never needs to survive a fork/spawn boundary.
    "R012": ("obs/",),
}

#: Rules that only apply to part of the tree (empty/absent = whole tree).
DEFAULT_SCOPES: Mapping[str, tuple[str, ...]] = {
    # The "flush local ints once per run" contract guards the hot kernels.
    "R004": (
        "partition/kl.py",
        "partition/fm.py",
        "partition/annealing/sa.py",
        "graphs/csr.py",
    ),
    # Seeded decision paths: partitioners, graph generators, and the
    # ensemble study sweeps (whose seed protocol is a reproducibility
    # contract — a stray unseeded draw would silently fork local and
    # remote aggregates).
    "R005": ("partition/", "graphs/generators/", "study/"),
    # Gain arithmetic lives in the partitioners.
    "R006": ("partition/",),
    # The robustness boundaries: the execution engine and the HTTP
    # service in front of it (a swallowed exception in a request handler
    # turns into a silent hang for the client).
    "R007": ("engine/", "service/"),
    # Lock discipline matters where objects are shared across threads:
    # the HTTP service, the engine coordinator, and the obs registries.
    "R011": ("service/", "engine/", "obs/"),
    # Seeded decision paths plus the layers that route seeds to them.
    "R014": ("partition/", "graphs/generators/", "study/", "engine/"),
    # Worker hot paths live in the engine and the compute kernels.
    "R015": ("engine/", "kernels/"),
}


def _matches(relpath: str, pattern: str) -> bool:
    if pattern.endswith("/"):
        return relpath.startswith(pattern)
    if any(ch in pattern for ch in "*?["):
        return fnmatch(relpath, pattern)
    return relpath == pattern


@dataclass(frozen=True)
class AnalysisConfig:
    """Where to scan and how rule scopes/allow-zones map onto the tree."""

    #: Directory containing the package to scan (e.g. ``src/repro``).
    root: Path
    #: Dotted name of the scanned package (for module names in findings).
    package: str = "repro"
    scopes: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    allow_zones: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW_ZONES)
    )
    #: Restrict the run to these rule ids (``None`` = every registered rule).
    rules: tuple[str, ...] | None = None

    def in_scope(self, rule_id: str, relpath: str) -> bool:
        """True when ``relpath`` is inside the rule's scope and no allow-zone."""
        scope = self.scopes.get(rule_id)
        if scope and not any(_matches(relpath, p) for p in scope):
            return False
        return not any(
            _matches(relpath, p) for p in self.allow_zones.get(rule_id, ())
        )


def default_config(root: Path | str | None = None) -> AnalysisConfig:
    """The repo's own configuration, rooted at the installed ``repro`` package."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    return AnalysisConfig(root=Path(root))
