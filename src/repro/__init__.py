"""repro — graph bisection with Kernighan-Lin, simulated annealing, and compaction.

A from-scratch reproduction of Bui, Heigham, Jones & Leighton,
*Improving the Performance of the Kernighan-Lin and Simulated Annealing
Graph Bisection Algorithms* (DAC 1989).

Quickstart::

    from repro import gbreg, kernighan_lin, ckl

    sample = gbreg(2000, b=16, d=3, rng=1)   # planted bisection width 16
    plain = kernighan_lin(sample.graph, rng=2)
    compacted = ckl(sample.graph, rng=2)
    print(plain.cut, compacted.cut, sample.planted_width)

See :mod:`repro.graphs` for the three random graph models and the special
families, :mod:`repro.partition` for the algorithms, :mod:`repro.core` for
compaction/CKL/CSA/multilevel, and :mod:`repro.bench` for the paper's
experiment protocol.
"""

from .core import (
    CompactedResult,
    Compaction,
    MultilevelResult,
    ckl,
    compact,
    compacted_bisection,
    csa,
    heavy_edge_matching,
    multilevel_bisection,
    random_maximal_matching,
)
from .graphs import Graph
from .graphs.generators import (
    binary_tree,
    complete_binary_tree,
    cycle_graph,
    g2set,
    g2set_with_degree,
    gbreg,
    gnp,
    gnp_with_degree,
    grid_graph,
    ladder_graph,
    path_graph,
    random_regular_graph,
)
from .partition import (
    AnnealingSchedule,
    BalanceCost,
    Bisection,
    bisect_paths_and_cycles,
    bisection_lower_bound,
    certify,
    exact_bisection,
    exact_bisection_width,
    fiduccia_mattheyses,
    greedy_improvement,
    kernighan_lin,
    KWayPartition,
    random_bisection,
    recursive_kway,
    simulated_annealing,
    stoer_wagner,
)
from .rng import LaggedFibonacciRandom

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Graph",
    "LaggedFibonacciRandom",
    # generators
    "gnp",
    "gnp_with_degree",
    "g2set",
    "g2set_with_degree",
    "gbreg",
    "random_regular_graph",
    "ladder_graph",
    "grid_graph",
    "binary_tree",
    "complete_binary_tree",
    "cycle_graph",
    "path_graph",
    # partitioning
    "Bisection",
    "random_bisection",
    "kernighan_lin",
    "simulated_annealing",
    "AnnealingSchedule",
    "BalanceCost",
    "fiduccia_mattheyses",
    "greedy_improvement",
    "exact_bisection",
    "exact_bisection_width",
    "bisect_paths_and_cycles",
    "recursive_kway",
    "KWayPartition",
    "stoer_wagner",
    "bisection_lower_bound",
    "certify",
    # compaction (the paper's contribution)
    "random_maximal_matching",
    "heavy_edge_matching",
    "compact",
    "Compaction",
    "compacted_bisection",
    "CompactedResult",
    "ckl",
    "csa",
    "multilevel_bisection",
    "MultilevelResult",
]
