"""Legacy setup shim.

Exists only so ``pip install -e . --no-use-pep517`` works in offline
environments that lack the ``wheel`` package (PEP 517 editable installs
build a wheel; the legacy ``setup.py develop`` path does not).  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
